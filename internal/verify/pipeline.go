// Package verify implements the parallel verification pipeline that
// sits between a runtime transport inbox and the sequential consensus
// engine. Signature checking dominates the engine's critical path under
// load — every inbound authenticator, share, and quorum aggregate costs
// an ed25519 verification — yet it is stateless and embarrassingly
// parallel. The pipeline moves that work onto a pool of workers so the
// single-threaded engine (which the determinism argument of DESIGN.md
// depends on) only ever handles pre-verified input.
//
// Admission is two-laned: resynchronisation traffic (catch-up batches,
// stall re-broadcasts, backfill replies — bundles carrying the
// types.Bundle Resync marker, or recognisably stale aggregates) is
// dequeued with strict priority over the live firehose, so a rejoining
// party's catch-up can never be starved by tip-of-chain traffic (the
// laggard-ingest livelock documented after E9). Resync bundles are
// additionally verified chain-aware: one full check of the highest
// aggregate admits the whole hash-linked prefix (chain.go). While the
// party is far behind the observed frontier, live artifacts beyond a
// configured window are shed at admission — they would sit unusable in
// the queue and are re-learned through catch-up anyway.
//
// Ordering: workers complete out of order, so two messages from the
// same peer may reach the engine reordered. The ICC protocols are
// insensitive to this — every artifact is a self-contained addition to
// a monotone pool, and the paper's network model (§1) already delivers
// with arbitrary per-link delay. The simulation harness keeps the
// synchronous in-engine verification path precisely because its
// determinism contract is stronger than the live runtime's.
//
// Beacon shares pass through unverified by design: checking a share for
// round k needs the round-(k−1) beacon value, which only the engine
// tracks, and beacon.Combine verifies lazily at threshold (t+1 shares)
// anyway.
package verify

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"icc/internal/crypto"
	"icc/internal/crypto/hash"
	"icc/internal/obs"
	"icc/internal/pool"
	"icc/internal/transport"
	"icc/internal/types"
)

// DefaultBehindWindow is how many rounds past the engine's own round
// live artifacts are still admitted while the party lags the observed
// peer frontier. Half a default catch-up batch (core.Config.ResyncBatch
// = 128): wide enough that normal jitter never sheds, narrow enough
// that a 500-round rejoin is not drowned by tip traffic it cannot use.
const DefaultBehindWindow = 64

// Lane labels for the icc_verify_lane_depth gauge family.
const (
	LaneLive   = "live"
	LaneResync = "resync"
)

// Options tunes a Pipeline. The zero value selects sensible defaults.
type Options struct {
	// Workers is the number of verification goroutines; 0 selects
	// GOMAXPROCS.
	Workers int
	// QueueSize bounds the live submission lane (0 → 4×Workers, min 64).
	// A full lane makes Submit block, applying backpressure to the
	// transport reader rather than buffering without bound.
	QueueSize int
	// ResyncQueueSize bounds the resync priority lane (0 → QueueSize).
	ResyncQueueSize int
	// CacheSize bounds the verified-digest cache (0 → 8192, negative →
	// disabled). The cache makes re-gossiped and resync'd artifacts
	// free: an artifact that verified once is admitted on digest match
	// without re-running its signature checks. The same size (and the
	// same negative-disables rule) governs the verified-statement cache
	// that admits signer-subset variants of an already-verified quorum
	// certificate (see processAggregate).
	CacheSize int
	// BehindWindow is how many rounds beyond the engine's own round
	// live artifacts are admitted while the party is behind the
	// observed peer frontier (0 → DefaultBehindWindow, negative →
	// never shed). Shed artifacts count as
	// icc_verify_rejects_total{reason="behind"}.
	BehindWindow int
	// Flat disables the lane split, chain-aware resync verification,
	// and behind-shedding, restoring the single-queue pre-lane
	// behaviour. Exists for A/B measurement (experiment E10) and as an
	// escape hatch; production keeps it false.
	Flat bool
	// Registry receives the pipeline's instruments (nil → none).
	Registry *obs.Registry
	// OnReject, if set, observes every artifact the pipeline drops,
	// with the claimed sender and the internal/crypto reason label.
	OnReject func(from types.PartyID, reason string)
}

// lane identifies a submission queue.
type lane int

const (
	laneLive lane = iota
	laneResync
)

// Pipeline verifies inbound envelopes on a worker pool. Create with
// New, feed with Submit, consume verified envelopes from Out, and
// Close when done. All methods are safe for concurrent use; Submit and
// Out are safe against a concurrent Close.
type Pipeline struct {
	verifier pool.Verifier
	liveIn   chan transport.Envelope
	resyncIn chan transport.Envelope
	out      chan transport.Envelope
	done     chan struct{}
	wg       sync.WaitGroup
	once     sync.Once

	cache *digestCache
	stmts *digestCache // verified aggregate statements (kind, round, proposer, blockHash)

	flat   bool
	window uint64 // behind-shedding window in rounds
	shed   bool   // shedding enabled

	// engineRound mirrors the hosted engine's working round (the runner
	// refreshes it after every engine call); frontier is the highest
	// round seen on a *verified* notarization or finalization — forged
	// rounds cannot move it, so a Byzantine sender cannot trip the
	// shedding predicate.
	engineRound atomic.Uint64
	frontier    atomic.Uint64

	onReject func(from types.PartyID, reason string)

	queueDepth      *obs.Gauge
	laneLiveDepth   *obs.Gauge
	laneResyncDepth *obs.Gauge
	latency         *obs.Histogram
	verified        *obs.Counter
	chainAdmit      *obs.Counter
	cacheHits       *obs.Counter
	cacheMiss       *obs.Counter
	rejects         *obs.CounterVec
}

// New builds and starts a pipeline verifying against v — typically
// pool.NewVerifier(pub, pool.VerifyFull). v must be safe for concurrent
// use.
func New(v pool.Verifier, opts Options) *Pipeline {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	queue := opts.QueueSize
	if queue <= 0 {
		queue = 4 * workers
		if queue < 64 {
			queue = 64
		}
	}
	resyncQueue := opts.ResyncQueueSize
	if resyncQueue <= 0 {
		resyncQueue = queue
	}
	window := opts.BehindWindow
	if window == 0 {
		window = DefaultBehindWindow
	}
	p := &Pipeline{
		verifier: v,
		liveIn:   make(chan transport.Envelope, queue),
		resyncIn: make(chan transport.Envelope, resyncQueue),
		out:      make(chan transport.Envelope, queue),
		done:     make(chan struct{}),
		cache:    newDigestCache(opts.CacheSize),
		stmts:    newDigestCache(opts.CacheSize),
		flat:     opts.Flat,
		window:   uint64(max(window, 0)),
		shed:     window > 0 && !opts.Flat,
		onReject: opts.OnReject,
	}
	if reg := opts.Registry; reg != nil {
		p.queueDepth = reg.Gauge("icc_verify_queue_depth", "Envelopes waiting for a verification worker (all lanes).")
		laneDepth := reg.GaugeVec("icc_verify_lane_depth", "Envelopes waiting for a verification worker, by lane.", "lane")
		p.laneLiveDepth = laneDepth.With(LaneLive)
		p.laneResyncDepth = laneDepth.With(LaneResync)
		p.latency = reg.Histogram("icc_verify_latency_seconds", "Per-envelope verification latency.", nil)
		p.verified = reg.Counter("icc_verify_verified_total", "Artifacts that passed signature verification.")
		p.chainAdmit = reg.Counter("icc_verify_chain_admitted_total", "Artifacts admitted by hash linkage to a verified aggregate instead of per-artifact verification.")
		p.cacheHits = reg.Counter("icc_verify_cache_hits_total", "Artifacts admitted from the verified-digest cache.")
		p.cacheMiss = reg.Counter("icc_verify_cache_misses_total", "Artifacts that required fresh verification.")
		p.rejects = reg.CounterVec("icc_verify_rejects_total", "Inbound artifacts rejected at admission, by reason.", "reason")
	}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

// NoteEngineRound records the hosted engine's working round. The runner
// calls it after every engine interaction; the shedding predicate and
// the resync-content heuristic read it.
func (p *Pipeline) NoteEngineRound(k types.Round) { p.engineRound.Store(uint64(k)) }

// Frontier reports the highest round observed on a verified
// notarization or finalization (the pipeline's view of the cluster
// tip). Exposed for tests and diagnostics.
func (p *Pipeline) Frontier() types.Round { return types.Round(p.frontier.Load()) }

// noteFrontier ratchets the observed frontier up to k.
func (p *Pipeline) noteFrontier(k types.Round) {
	for {
		cur := p.frontier.Load()
		if uint64(k) <= cur || p.frontier.CompareAndSwap(cur, uint64(k)) {
			return
		}
	}
}

// behind reports whether the engine lags the observed frontier by more
// than the shedding window, and the highest round still admitted.
func (p *Pipeline) behind() (uint64, bool) {
	if !p.shed {
		return 0, false
	}
	limit := p.engineRound.Load() + p.window
	return limit, p.frontier.Load() > limit
}

// classify routes an envelope to a lane. Resync-marked bundles take the
// priority lane; so — while the party is behind — do unmarked bundles
// whose aggregates sit well below the observed frontier (catch-up
// content from a sender predating the marker). Everything else is live.
func (p *Pipeline) classify(m types.Message) lane {
	if p.flat {
		return laneLive
	}
	b, ok := m.(*types.Bundle)
	if !ok {
		return laneLive
	}
	if b.Resync {
		return laneResync
	}
	if _, isBehind := p.behind(); isBehind {
		// A live bundle's aggregates ride at the frontier (a proposal
		// carries its parent's notarization); catch-up content is far
		// below it. The margin keeps live proposals in the live lane.
		f := p.frontier.Load()
		for _, sub := range b.Messages {
			switch v := sub.(type) {
			case *types.Notarization:
				if uint64(v.Round)+p.window < f {
					return laneResync
				}
			case *types.Finalization:
				if uint64(v.Round)+p.window < f {
					return laneResync
				}
			}
		}
	}
	return laneLive
}

// roundOf extracts the protocol round an artifact belongs to, or 0 for
// kinds the shedder must never touch (control traffic, gossip refs,
// RBC fragments — layers with their own admission logic).
func roundOf(m types.Message) uint64 {
	switch v := m.(type) {
	case *types.BlockMsg:
		if v.Block != nil {
			return uint64(v.Block.Round)
		}
	case *types.Authenticator:
		return uint64(v.Round)
	case *types.NotarizationShare:
		return uint64(v.Round)
	case *types.Notarization:
		return uint64(v.Round)
	case *types.FinalizationShare:
		return uint64(v.Round)
	case *types.Finalization:
		return uint64(v.Round)
	case *types.BeaconShare:
		return uint64(v.Round)
	}
	return 0
}

// shedLive drops live-lane artifacts beyond the admission window while
// the party is behind. It returns the (possibly filtered) message and
// whether anything at all survives. Shed artifacts are counted as
// rejects with reason "behind" — they are not errors, but the operator
// watching a rejoin should see where the firehose went.
func (p *Pipeline) shedLive(from types.PartyID, m types.Message) (types.Message, bool) {
	limit, isBehind := p.behind()
	if !isBehind {
		return m, true
	}
	drop := func(sub types.Message) bool { return roundOf(sub) > limit }
	if b, ok := m.(*types.Bundle); ok {
		kept := make([]types.Message, 0, len(b.Messages))
		for _, sub := range b.Messages {
			if drop(sub) {
				p.rejectBehind(from)
				continue
			}
			kept = append(kept, sub)
		}
		if len(kept) == 0 {
			return nil, false
		}
		if len(kept) == len(b.Messages) {
			return b, true
		}
		return &types.Bundle{Messages: kept, Resync: b.Resync}, true
	}
	if sb, ok := m.(*types.ShareBundle); ok {
		keep := func(groups []types.ShareGroup) []types.ShareGroup {
			kept := make([]types.ShareGroup, 0, len(groups))
			for i := range groups {
				if uint64(groups[i].Round) > limit {
					p.rejectBehind(from)
					continue
				}
				kept = append(kept, groups[i])
			}
			return kept
		}
		notar, final := keep(sb.Notar), keep(sb.Final)
		beacon := make([]*types.BeaconShare, 0, len(sb.Beacon))
		for _, s := range sb.Beacon {
			if uint64(s.Round) > limit {
				p.rejectBehind(from)
				continue
			}
			beacon = append(beacon, s)
		}
		if len(notar)+len(final)+len(beacon) == 0 {
			return nil, false
		}
		return &types.ShareBundle{Notar: notar, Final: final, Beacon: beacon}, true
	}
	if drop(m) {
		p.rejectBehind(from)
		return nil, false
	}
	return m, true
}

func (p *Pipeline) rejectBehind(from types.PartyID) {
	p.rejects.With("behind").Inc()
	if p.onReject != nil {
		p.onReject(from, "behind")
	}
}

// admit classifies and (for the live lane) sheds one envelope. ok=false
// means the envelope was consumed entirely by the shedder and nothing
// is to be queued.
func (p *Pipeline) admit(env transport.Envelope) (transport.Envelope, lane, bool) {
	ln := p.classify(env.Msg)
	if ln == laneLive {
		msg, keep := p.shedLive(env.From, env.Msg)
		if !keep {
			return env, ln, false
		}
		env.Msg = msg
	}
	return env, ln, true
}

// enqueued/dequeued keep the depth gauges in step with the lanes.
func (p *Pipeline) enqueued(ln lane) {
	p.queueDepth.Add(1)
	if ln == laneResync {
		p.laneResyncDepth.Add(1)
	} else {
		p.laneLiveDepth.Add(1)
	}
}

func (p *Pipeline) dequeued(ln lane) {
	p.queueDepth.Add(-1)
	if ln == laneResync {
		p.laneResyncDepth.Add(-1)
	} else {
		p.laneLiveDepth.Add(-1)
	}
}

// Submit queues one envelope for verification. It blocks when the lane
// is full (backpressure) and reports false once the pipeline is closed.
// A caller that is also the sole consumer of Out must use TrySubmit
// and drain Out between attempts instead — blocking here while workers
// block on a full Out channel would deadlock. A true return only means
// the envelope was consumed: while the party is far behind the cluster
// frontier, live artifacts beyond the admission window are shed rather
// than queued.
func (p *Pipeline) Submit(env transport.Envelope) bool {
	env, ln, ok := p.admit(env)
	if !ok {
		return !p.Closed()
	}
	ch := p.liveIn
	if ln == laneResync {
		ch = p.resyncIn
	}
	select {
	case ch <- env:
		p.enqueued(ln)
		return true
	case <-p.done:
		return false
	}
}

// TrySubmit queues one envelope without blocking. It reports false when
// the lane is full or the pipeline is closed (distinguish with Closed).
func (p *Pipeline) TrySubmit(env transport.Envelope) bool {
	env, ln, ok := p.admit(env)
	if !ok {
		return !p.Closed()
	}
	ch := p.liveIn
	if ln == laneResync {
		ch = p.resyncIn
	}
	select {
	case ch <- env:
		p.enqueued(ln)
		return true
	default:
		return false
	}
}

// Closed reports whether Close has been called.
func (p *Pipeline) Closed() bool {
	select {
	case <-p.done:
		return true
	default:
		return false
	}
}

// Out delivers verified envelopes. An envelope whose every artifact was
// rejected never appears here.
func (p *Pipeline) Out() <-chan transport.Envelope { return p.out }

// Close stops the workers and releases the pipeline. In-flight
// envelopes may be dropped; the consensus layer tolerates message loss
// by design (resync). Safe to call more than once. Envelopes still
// buffered in the lanes are abandoned, so the depth gauges are zeroed
// here — otherwise a Prometheus scrape after shutdown would show
// phantom queue depth forever.
func (p *Pipeline) Close() {
	p.once.Do(func() { close(p.done) })
	p.wg.Wait()
	p.queueDepth.Set(0)
	p.laneLiveDepth.Set(0)
	p.laneResyncDepth.Set(0)
}

func (p *Pipeline) worker() {
	defer p.wg.Done()
	for {
		// Strict priority: a queued resync envelope is always taken
		// before any live one. The live firehose therefore cannot
		// starve catch-up — the inverse starvation (resync swamping
		// live) is bounded by the per-peer rate limit on catch-up
		// responses and the size of a batch.
		select {
		case <-p.done:
			return
		case env := <-p.resyncIn:
			if !p.handle(env, laneResync) {
				return
			}
			continue
		default:
		}
		select {
		case <-p.done:
			return
		case env := <-p.resyncIn:
			if !p.handle(env, laneResync) {
				return
			}
		case env := <-p.liveIn:
			if !p.handle(env, laneLive) {
				return
			}
		}
	}
}

// handle verifies one dequeued envelope and forwards survivors. It
// reports false when the pipeline closed mid-delivery.
func (p *Pipeline) handle(env transport.Envelope, ln lane) bool {
	p.dequeued(ln)
	start := time.Now()
	msg, ok := p.process(env.From, env.Msg)
	p.latency.Observe(time.Since(start).Seconds())
	if !ok {
		return true
	}
	select {
	case p.out <- transport.Envelope{From: env.From, Msg: msg}:
		return true
	case <-p.done:
		return false
	}
}

// process verifies one message, returning the (possibly filtered)
// message to deliver and whether to deliver it at all.
func (p *Pipeline) process(from types.PartyID, m types.Message) (types.Message, bool) {
	switch v := m.(type) {
	case *types.Bundle:
		if v.Resync && !p.flat {
			return p.processResync(from, v)
		}
		kept := make([]types.Message, 0, len(v.Messages))
		for _, sub := range v.Messages {
			if s, ok := p.process(from, sub); ok {
				kept = append(kept, s)
			}
		}
		if len(kept) == 0 {
			return nil, false
		}
		return &types.Bundle{Messages: kept, Resync: v.Resync}, true
	case *types.ShareBundle:
		return p.processShareBundle(from, v)
	case *types.Authenticator, *types.NotarizationShare, *types.FinalizationShare:
		if err := p.checkCached(m); err != nil {
			p.reject(from, err)
			return nil, false
		}
		return m, true
	case *types.Notarization, *types.Finalization:
		return p.processAggregate(from, m)
	default:
		// Blocks carry no signature of their own (the authenticator
		// does); beacon shares verify lazily in beacon.Combine; the
		// remaining kinds (status, gossip, RBC) are control traffic for
		// layers with their own validation.
		return m, true
	}
}

// processAggregate admits one quorum certificate. Statement-level
// admission extends the chain-aware argument of processResync to live
// traffic: with eager relay-side aggregation (internal/gossip),
// different relays legitimately combine different signer subsets over
// the same statement, producing byte-distinct certificates the digest
// cache cannot recognise. Once any certificate for a statement has
// fully verified, a later subset-variant is admitted on statement
// identity alone (icc_verify_chain_admitted_total) — the claim "this
// block is notarized/finalized" is already proven, and re-checking a
// different n−t signatures proves nothing new. As with resync chain
// admission, the admitted bytes themselves are not attested: a party
// re-serving spliced garbage Agg bytes is rejected by its receivers,
// which full-verify. DESIGN.md §11 and §14 carry the argument.
func (p *Pipeline) processAggregate(from types.PartyID, m types.Message) (types.Message, bool) {
	round := types.Round(roundOf(m))
	if stmt, ok := statementOf(m); ok && p.stmts != nil && p.stmts.contains(stmt) {
		p.chainAdmit.Inc()
		p.cacheInsert(m)
		p.noteFrontier(round)
		return m, true
	}
	if err := p.checkCached(m); err != nil {
		p.reject(from, err)
		return nil, false
	}
	p.markStatement(m)
	p.noteFrontier(round)
	return m, true
}

// processShareBundle verifies the individual shares inside a gossip
// share batch and rebuilds the bundle from the survivors. The group
// framing is transport-only and carries no signature of its own, so
// each (signer, sig) pair is checked as the share message it expands
// to; beacon shares pass through unverified per the package policy
// (beacon.Combine verifies lazily at threshold). Verified shares enter
// the digest cache under their individual encoding, so the same share
// re-arriving bare or differently grouped is admitted for free.
func (p *Pipeline) processShareBundle(from types.PartyID, b *types.ShareBundle) (types.Message, bool) {
	notar := p.filterShareGroups(from, b.Notar, false)
	final := p.filterShareGroups(from, b.Final, true)
	if len(notar)+len(final)+len(b.Beacon) == 0 {
		return nil, false
	}
	return &types.ShareBundle{Notar: notar, Final: final, Beacon: b.Beacon}, true
}

func (p *Pipeline) filterShareGroups(from types.PartyID, groups []types.ShareGroup, final bool) []types.ShareGroup {
	kept := make([]types.ShareGroup, 0, len(groups))
	for i := range groups {
		g := groups[i]
		signers := make([]types.PartyID, 0, len(g.Signers))
		sigs := make([][]byte, 0, len(g.Sigs))
		for j, signer := range g.Signers {
			var m types.Message
			if final {
				m = &types.FinalizationShare{Round: g.Round, Proposer: g.Proposer,
					BlockHash: g.BlockHash, Signer: signer, Sig: g.Sigs[j]}
			} else {
				m = &types.NotarizationShare{Round: g.Round, Proposer: g.Proposer,
					BlockHash: g.BlockHash, Signer: signer, Sig: g.Sigs[j]}
			}
			if err := p.checkCached(m); err != nil {
				p.reject(from, err)
				continue
			}
			signers = append(signers, signer)
			sigs = append(sigs, g.Sigs[j])
		}
		if len(signers) == 0 {
			continue
		}
		g.Signers, g.Sigs = signers, sigs
		kept = append(kept, g)
	}
	return kept
}

// statementOf returns the digest identifying the statement a quorum
// certificate attests — (kind, round, proposer, blockHash) — which is
// invariant across the signer subsets different relays may aggregate.
func statementOf(m types.Message) (hash.Digest, bool) {
	switch v := m.(type) {
	case *types.Notarization:
		return statementKey(types.KindNotarization, v.Round, v.Proposer, v.BlockHash), true
	case *types.Finalization:
		return statementKey(types.KindFinalization, v.Round, v.Proposer, v.BlockHash), true
	}
	return hash.Digest{}, false
}

func statementKey(k types.Kind, round types.Round, proposer types.PartyID, bh hash.Digest) hash.Digest {
	b := append([]byte{byte(k)}, types.SigningBytes(round, proposer, bh)...)
	return hash.Sum(hash.DomainPayload, b)
}

// markStatement records an aggregate's statement as verified, enabling
// statement-level admission of signer-subset variants.
func (p *Pipeline) markStatement(m types.Message) {
	if p.stmts == nil {
		return
	}
	if stmt, ok := statementOf(m); ok {
		p.stmts.insert(stmt)
	}
}

// checkCached verifies one signed artifact, consulting the verified-
// digest cache first. Only successful verifications are cached, keyed
// by the hash of the artifact's canonical encoding — a byte-identical
// redelivery is admitted without touching the verifier.
func (p *Pipeline) checkCached(m types.Message) error {
	var key hash.Digest
	if p.cache != nil {
		key = hash.Sum(hash.DomainPayload, types.Marshal(m))
		if p.cache.contains(key) {
			p.cacheHits.Inc()
			return nil
		}
	}
	if err := p.check(m); err != nil {
		if p.cache != nil {
			p.cacheMiss.Inc()
		}
		return err
	}
	if p.cache != nil {
		p.cacheMiss.Inc()
		p.cache.insert(key)
	}
	p.verified.Inc()
	return nil
}

// cacheInsert records an artifact as verified without running its
// checks — the chain-aware admission path, where linkage to a verified
// aggregate is the proof. A later byte-identical redelivery then hits
// the cache like any other verified artifact.
func (p *Pipeline) cacheInsert(m types.Message) {
	if p.cache != nil {
		p.cache.insert(hash.Sum(hash.DomainPayload, types.Marshal(m)))
	}
}

func (p *Pipeline) check(m types.Message) error {
	switch v := m.(type) {
	case *types.Authenticator:
		return p.verifier.Authenticator(v)
	case *types.NotarizationShare:
		return p.verifier.NotarizationShare(v)
	case *types.Notarization:
		return p.verifier.Notarization(v)
	case *types.FinalizationShare:
		return p.verifier.FinalizationShare(v)
	case *types.Finalization:
		return p.verifier.Finalization(v)
	default:
		return nil
	}
}

func (p *Pipeline) reject(from types.PartyID, err error) {
	reason := crypto.Reason(err)
	p.rejects.With(reason).Inc()
	if p.onReject != nil {
		p.onReject(from, reason)
	}
}

// digestCache is a bounded FIFO set of verified artifact digests.
// Sized so the working set (the last few rounds of shares and
// aggregates from every peer) stays resident; under churn the oldest
// entries fall out first, which at worst costs a re-verification.
type digestCache struct {
	mu    sync.Mutex
	set   map[hash.Digest]struct{}
	order []hash.Digest // ring buffer of insertion order
	next  int           // next slot to overwrite once full
}

func newDigestCache(size int) *digestCache {
	if size < 0 {
		return nil
	}
	if size == 0 {
		size = 8192
	}
	return &digestCache{
		set:   make(map[hash.Digest]struct{}, size),
		order: make([]hash.Digest, 0, size),
	}
}

func (c *digestCache) contains(d hash.Digest) bool {
	c.mu.Lock()
	_, ok := c.set[d]
	c.mu.Unlock()
	return ok
}

func (c *digestCache) insert(d hash.Digest) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.set[d]; ok {
		return
	}
	if len(c.order) < cap(c.order) {
		c.order = append(c.order, d)
	} else {
		delete(c.set, c.order[c.next])
		c.order[c.next] = d
		c.next = (c.next + 1) % len(c.order)
	}
	c.set[d] = struct{}{}
}

// Len reports the number of cached digests (for tests).
func (c *digestCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.set)
}
