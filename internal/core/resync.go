package core

import (
	"time"

	"icc/internal/crypto/hash"
	"icc/internal/engine"
	"icc/internal/types"
)

// Resynchronisation layer. The ICC protocol as written is quiescent:
// every artifact is broadcast exactly once, which suffices under the
// paper's eventual-delivery assumption (§1) but deadlocks the moment a
// message is genuinely lost — a TCP partition black-holes frames, a
// crashed-and-recovered process has a hole in its pool, a chaos wrapper
// drops packets. The protocol's only built-in redundancy is one round
// deep (a round-k proposal bundle carries the round-(k−1) notarization),
// so any deeper loss wedges the party, and with it potentially the whole
// cluster.
//
// The mechanism here restores liveness without touching safety (all
// retransmitted artifacts carry their original signatures and re-enter
// pools through the same verification paths):
//
//   - Stall detection: whenever the engine's round has not changed for
//     ResyncInterval, it sends every peer a Status (its round and
//     finalization frontier) bundled with the artifacts of its current
//     round — blocks, authenticators, notarization/finalization shares,
//     its own beacon shares, the previous round's notarized block, and
//     its latest finalization. Two halves of a healed partition unwedge
//     each other this way within one interval.
//
//   - Catch-up: a party receiving a Status from a peer that is more than
//     one round behind answers with a batch of up to ResyncBatch rounds
//     of notarized blocks (block + notarization + this party's own
//     beacon share per round) plus its latest finalization. The laggard
//     replays these through the ordinary clauses — a notarization in the
//     pool finishes a round instantly — and repeats its Status while it
//     remains behind, closing any gap batch by batch. Responses are
//     rate-limited per requesting peer to one per ResyncInterval.
//
// Everything travels as unicast bundles rather than broadcasts so that
// content-addressed dissemination layers (gossip's seen-set) cannot
// deduplicate the retransmission away.

// touchResync records protocol progress: the stall timer restarts.
func (e *Engine) touchResync(now time.Duration) {
	if e.cfg.ResyncInterval > 0 {
		e.resyncAt = now + e.cfg.ResyncInterval
	}
}

// maybeResync fires the stall handler when the round has been stuck for
// a full interval.
func (e *Engine) maybeResync(now time.Duration) {
	if e.cfg.ResyncInterval <= 0 || now < e.resyncAt {
		return
	}
	e.resyncAt = now + e.cfg.ResyncInterval
	e.statusSeq++
	msgs := []types.Message{&types.Status{Round: e.round, Finalized: e.kmax, Seq: e.statusSeq}}
	// Our beacon shares for the current round and (once the round's own
	// beacon is known) the next — the pipelined share of tryEnterRound
	// may have been lost.
	if sh, err := e.cfg.Beacon.ShareForRound(e.round); err == nil {
		msgs = append(msgs, sh)
	}
	if e.inRound {
		if sh, err := e.cfg.Beacon.ShareForRound(e.round + 1); err == nil {
			msgs = append(msgs, sh)
		}
	}
	// The previous round's notarized block, for peers one round behind.
	if h, ok := e.pool.NotarizedInRound(e.round - 1); ok {
		if b := e.pool.Block(h); b != nil {
			msgs = append(msgs, &types.BlockMsg{Block: b})
		}
		if nz := e.pool.Notarization(h); nz != nil {
			msgs = append(msgs, nz)
		}
	}
	// Everything we hold for the current round.
	for _, h := range e.pool.BlocksInRound(e.round) {
		if b := e.pool.Block(h); b != nil {
			msgs = append(msgs, &types.BlockMsg{Block: b})
		}
		if a := e.pool.Authenticator(h); a != nil {
			msgs = append(msgs, a)
		}
		if nz := e.pool.Notarization(h); nz != nil {
			msgs = append(msgs, nz)
		}
		for _, ns := range e.pool.NotarShareMessages(h) {
			msgs = append(msgs, ns)
		}
		for _, fs := range e.pool.FinalShareMessages(h) {
			msgs = append(msgs, fs)
		}
	}
	// Our finalization frontier, so laggards learn what is settled.
	if e.lastFinalHash != (hash.Digest{}) {
		if f := e.pool.Finalization(e.lastFinalHash); f != nil {
			msgs = append(msgs, f)
		}
	}
	bundle := &types.Bundle{Messages: msgs}
	for p := 0; p < e.cfg.Keys.N; p++ {
		if pid := types.PartyID(p); pid != e.cfg.Self {
			e.out = append(e.out, engine.Unicast(pid, bundle))
		}
	}
	if e.cfg.Hooks.OnResync != nil {
		e.cfg.Hooks.OnResync(e.round, now)
	}
}

// handleStatus answers a lagging peer's Status with a catch-up batch.
func (e *Engine) handleStatus(from types.PartyID, st *types.Status, now time.Duration) {
	if e.cfg.ResyncInterval <= 0 {
		return
	}
	// Peers at most one round behind are healed by ordinary traffic and
	// by the stall bundle itself; only answer real gaps.
	if st.Round+1 >= e.round {
		return
	}
	// Rate-limit per peer: a Byzantine party repeating Status must not
	// turn us into a bandwidth amplifier.
	if last, ok := e.backfilledAt[from]; ok && now < last+e.cfg.ResyncInterval {
		return
	}
	e.backfilledAt[from] = now

	end := e.round
	if limit := st.Round + types.Round(e.cfg.ResyncBatch); end > limit {
		end = limit
	}
	var msgs []types.Message
	for k := st.Round; k <= end; k++ {
		// Our own beacon share for k lets the laggard accumulate the
		// t+1 distinct shares it needs to re-enter the round (every
		// responding peer contributes one).
		if sh, err := e.cfg.Beacon.ShareForRound(k); err == nil {
			msgs = append(msgs, sh)
		}
		if k == end {
			break // shares only for the boundary round
		}
		h, ok := e.pool.NotarizedInRound(k)
		if !ok {
			continue // pruned or unknown; the laggard will re-ask
		}
		if b := e.pool.Block(h); b != nil {
			msgs = append(msgs, &types.BlockMsg{Block: b})
		}
		// The authenticator makes the block admissible (IsValid requires
		// IsAuthentic); without it the notarization is inert.
		if a := e.pool.Authenticator(h); a != nil {
			msgs = append(msgs, a)
		}
		if nz := e.pool.Notarization(h); nz != nil {
			msgs = append(msgs, nz)
		}
	}
	if e.lastFinalHash != (hash.Digest{}) {
		if f := e.pool.Finalization(e.lastFinalHash); f != nil {
			msgs = append(msgs, f)
		}
	}
	if len(msgs) == 0 {
		return
	}
	e.out = append(e.out, engine.Unicast(from, &types.Bundle{Messages: msgs}))
}
