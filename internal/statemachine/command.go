// Package statemachine provides the replicated-state-machine layer on
// top of atomic broadcast (paper §1, [33]): clients submit commands,
// the consensus layer orders them into block payloads, and every replica
// applies the same sequence to a key-value store, ending in the same
// state.
//
// It also implements the payload-construction logic Fig. 1 leaves to the
// application (getPayload): a command queue that batches pending
// commands and uses the chain context to avoid re-proposing commands
// that are already in the path being extended (§3.3: "in constructing
// the payload ... a party ... can take into account the payloads in the
// blocks already in that path (for example, to avoid duplicating
// commands)").
package statemachine

import (
	"errors"
	"fmt"

	"icc/internal/types"
)

// Op is a state-machine operation code.
type Op uint8

// Supported operations.
const (
	OpSet Op = iota + 1
	OpDelete
	OpAppend
)

// Command is one client command. (Client, Seq) identifies it uniquely:
// replicas apply each identity at most once, and per-client commands
// apply in Seq order.
type Command struct {
	Client uint64
	Seq    uint64
	Op     Op
	Key    string
	Value  []byte
}

// ident is the dedup identity of a command.
type ident struct {
	client uint64
	seq    uint64
}

// ErrBadPayload is returned when decoding a malformed payload.
var ErrBadPayload = errors.New("statemachine: malformed payload")

// MaxPayloadBytes bounds an encoded block payload (4 MiB). It is
// enforced on both sides of the wire: Queue.GetPayload never builds a
// batch that encodes past it, and DecodePayload rejects anything larger
// before parsing a single command.
const MaxPayloadBytes = 4 << 20

// payloadHeaderSize is the fixed encoding overhead of a payload (the
// u32 command count).
const payloadHeaderSize = 4

// WireSize returns the exact number of bytes the command occupies inside
// an encoded payload: u64 client + u64 seq + u8 op + two
// u32-length-prefixed byte strings.
func (c Command) WireSize() int {
	return 8 + 8 + 1 + 4 + len(c.Key) + 4 + len(c.Value)
}

// EncodedPayloadSize returns the exact encoded size of a batch.
func EncodedPayloadSize(cmds []Command) int {
	size := payloadHeaderSize
	for _, c := range cmds {
		size += c.WireSize()
	}
	return size
}

// EncodePayload serialises a batch of commands into a block payload.
// The encoder is sized exactly, so large batches serialise without
// intermediate re-allocations.
func EncodePayload(cmds []Command) []byte {
	e := types.NewEncoder(EncodedPayloadSize(cmds))
	e.U32(uint32(len(cmds)))
	for _, c := range cmds {
		e.U64(c.Client)
		e.U64(c.Seq)
		e.U8(uint8(c.Op))
		e.VarBytes([]byte(c.Key))
		e.VarBytes(c.Value)
	}
	return e.Bytes()
}

// DecodePayload parses a block payload into commands. An empty payload
// decodes to no commands.
func DecodePayload(payload []byte) ([]Command, error) {
	if len(payload) == 0 {
		return nil, nil
	}
	if len(payload) > MaxPayloadBytes {
		return nil, fmt.Errorf("%w: payload %d bytes exceeds %d", ErrBadPayload, len(payload), MaxPayloadBytes)
	}
	d := types.NewDecoder(payload)
	count := int(d.U32())
	if d.Err() != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadPayload, d.Err())
	}
	if count > 1<<20 {
		return nil, fmt.Errorf("%w: absurd command count %d", ErrBadPayload, count)
	}
	cmds := make([]Command, 0, count)
	for i := 0; i < count; i++ {
		var c Command
		c.Client = d.U64()
		c.Seq = d.U64()
		c.Op = Op(d.U8())
		c.Key = string(d.VarBytes())
		c.Value = d.VarBytes()
		if d.Err() != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadPayload, d.Err())
		}
		cmds = append(cmds, c)
	}
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadPayload, err)
	}
	return cmds, nil
}
