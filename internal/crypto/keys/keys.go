// Package keys generates and serialises the key material of an ICC
// cluster. Paper §3.1: "Each party will be initialized with some secret
// keys, as well as with the public keys for itself and all other
// parties... set up by a trusted party or a secure distributed key
// generation protocol." This package is that trusted dealer.
//
// Per party the material comprises (paper §3.2):
//   - an S_auth signing key (ordinary signatures, ed25519),
//   - an S_notary key for the (t, n−t, n) notarization multi-signature,
//   - an S_final key for the (t, n−t, n) finalization multi-signature,
//   - an S_beacon share of the (t, t+1, n) unique threshold signature.
package keys

import (
	"fmt"
	"io"

	"icc/internal/crypto/multisig"
	"icc/internal/crypto/sig"
	"icc/internal/crypto/thresig"
	"icc/internal/types"
)

// Public is the key material every party is provisioned with.
type Public struct {
	N      int
	T      int // tolerated faults, t < n/3
	Auth   []sig.PublicKey
	Notary *multisig.PublicInfo
	Final  *multisig.PublicInfo
	Beacon *thresig.PublicInfo
	// GenesisSeed is the fixed initial beacon value R_0, known to all
	// parties (paper §2.3).
	GenesisSeed []byte
}

// Private is one party's secret key material.
type Private struct {
	Index  types.PartyID
	Auth   sig.PrivateKey
	Notary multisig.SecretKey
	Final  multisig.SecretKey
	Beacon thresig.SecretShare
}

// Deal generates the full key material for an n-party cluster.
func Deal(rng io.Reader, n int) (*Public, []Private, error) {
	if n < 1 {
		return nil, nil, fmt.Errorf("keys: invalid party count %d", n)
	}
	t := types.MaxFaults(n)
	pub := &Public{
		N:           n,
		T:           t,
		Auth:        make([]sig.PublicKey, n),
		Notary:      &multisig.PublicInfo{N: n, Threshold: types.NotaryQuorum(n), Keys: make([]sig.PublicKey, n)},
		Final:       &multisig.PublicInfo{N: n, Threshold: types.NotaryQuorum(n), Keys: make([]sig.PublicKey, n)},
		GenesisSeed: []byte("icc genesis beacon seed"),
	}
	privs := make([]Private, n)
	for i := 0; i < n; i++ {
		privs[i].Index = types.PartyID(i)
		var err error
		if pub.Auth[i], privs[i].Auth, err = sig.GenerateKey(rng); err != nil {
			return nil, nil, fmt.Errorf("keys: auth key %d: %w", i, err)
		}
		var notarySk, finalSk sig.PrivateKey
		if pub.Notary.Keys[i], notarySk, err = sig.GenerateKey(rng); err != nil {
			return nil, nil, fmt.Errorf("keys: notary key %d: %w", i, err)
		}
		privs[i].Notary = multisig.SecretKey{Index: i, Key: notarySk}
		if pub.Final.Keys[i], finalSk, err = sig.GenerateKey(rng); err != nil {
			return nil, nil, fmt.Errorf("keys: final key %d: %w", i, err)
		}
		privs[i].Final = multisig.SecretKey{Index: i, Key: finalSk}
	}
	beaconPub, beaconShares, err := thresig.Deal(rng, types.BeaconQuorum(n), n)
	if err != nil {
		return nil, nil, fmt.Errorf("keys: beacon scheme: %w", err)
	}
	pub.Beacon = beaconPub
	for i := 0; i < n; i++ {
		privs[i].Beacon = beaconShares[i]
	}
	return pub, privs, nil
}
