package verify

import (
	"crypto/rand"
	"sync"
	"testing"
	"time"

	"icc/internal/crypto/hash"
	"icc/internal/crypto/keys"
	"icc/internal/obs"
	"icc/internal/pool"
	"icc/internal/transport"
	"icc/internal/types"
)

type fixture struct {
	pub   *keys.Public
	privs []keys.Private
}

func newFixture(t testing.TB, n int) *fixture {
	t.Helper()
	pub, privs, err := keys.Deal(rand.Reader, n)
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{pub: pub, privs: privs}
}

func (f *fixture) nshare(round types.Round, proposer, signer types.PartyID, blockHash hash.Digest) *types.NotarizationShare {
	msg := types.SigningBytes(round, proposer, blockHash)
	s := f.privs[signer].Notary.Sign(types.DomainNotarization, msg)
	return &types.NotarizationShare{Round: round, Proposer: proposer, BlockHash: blockHash,
		Signer: signer, Sig: s.Signature}
}

func (f *fixture) badShare(round types.Round, signer types.PartyID) *types.NotarizationShare {
	return &types.NotarizationShare{Round: round, Proposer: 0, Signer: signer,
		BlockHash: hash.SumUint64(hash.DomainBlock, uint64(round)), Sig: make([]byte, 64)}
}

func drain(t *testing.T, p *Pipeline, want int, timeout time.Duration) []transport.Envelope {
	t.Helper()
	var got []transport.Envelope
	deadline := time.After(timeout)
	for len(got) < want {
		select {
		case env := <-p.Out():
			got = append(got, env)
		case <-deadline:
			t.Fatalf("drained %d of %d envelopes before timeout", len(got), want)
		}
	}
	return got
}

func TestPipelineVerifiesAndFilters(t *testing.T) {
	f := newFixture(t, 4)
	reg := obs.NewRegistry()
	p := New(pool.NewVerifier(f.pub, pool.VerifyFull), Options{Workers: 2, Registry: reg})
	defer p.Close()

	bh := hash.SumUint64(hash.DomainBlock, 1)
	good := f.nshare(1, 0, 1, bh)
	if !p.Submit(transport.Envelope{From: 1, Msg: good}) {
		t.Fatal("submit failed")
	}
	if !p.Submit(transport.Envelope{From: 2, Msg: f.badShare(1, 2)}) {
		t.Fatal("submit failed")
	}
	got := drain(t, p, 1, 5*time.Second)
	s, ok := got[0].Msg.(*types.NotarizationShare)
	if !ok || s.Signer != 1 {
		t.Fatalf("unexpected delivery %#v", got[0].Msg)
	}
	// The bad share must never surface.
	select {
	case env := <-p.Out():
		t.Fatalf("invalid artifact delivered: %#v", env.Msg)
	case <-time.After(200 * time.Millisecond):
	}
	snap := reg.Snapshot()
	if snap[`icc_verify_rejects_total{reason="bad_share"}`] != 1 {
		t.Fatalf("reject counter = %v, want 1", snap[`icc_verify_rejects_total{reason="bad_share"}`])
	}
	if snap["icc_verify_verified_total"] != 1 {
		t.Fatalf("verified counter = %v, want 1", snap["icc_verify_verified_total"])
	}
}

func TestPipelineBundleFiltering(t *testing.T) {
	f := newFixture(t, 4)
	var mu sync.Mutex
	var rejectedFrom []types.PartyID
	p := New(pool.NewVerifier(f.pub, pool.VerifyFull), Options{
		Workers: 1,
		OnReject: func(from types.PartyID, reason string) {
			mu.Lock()
			rejectedFrom = append(rejectedFrom, from)
			mu.Unlock()
		},
	})
	defer p.Close()

	bh := hash.SumUint64(hash.DomainBlock, 1)
	mixed := &types.Bundle{Messages: []types.Message{
		f.nshare(1, 0, 1, bh),
		f.badShare(1, 2),
		f.nshare(1, 0, 3, bh),
	}}
	p.Submit(transport.Envelope{From: 2, Msg: mixed})
	got := drain(t, p, 1, 5*time.Second)
	b, ok := got[0].Msg.(*types.Bundle)
	if !ok || len(b.Messages) != 2 {
		t.Fatalf("bundle not filtered: %#v", got[0].Msg)
	}
	// A bundle of nothing but garbage is dropped whole.
	p.Submit(transport.Envelope{From: 2, Msg: &types.Bundle{Messages: []types.Message{f.badShare(2, 2)}}})
	select {
	case env := <-p.Out():
		t.Fatalf("all-invalid bundle delivered: %#v", env.Msg)
	case <-time.After(200 * time.Millisecond):
	}
	mu.Lock()
	defer mu.Unlock()
	if len(rejectedFrom) != 2 || rejectedFrom[0] != 2 {
		t.Fatalf("rejects = %v, want two from party 2", rejectedFrom)
	}
}

func TestPipelinePassThroughKinds(t *testing.T) {
	f := newFixture(t, 4)
	p := New(pool.NewVerifier(f.pub, pool.VerifyFull), Options{Workers: 1})
	defer p.Close()
	// Unsigned control traffic flows through untouched.
	msgs := []types.Message{
		&types.Status{Round: 3, Finalized: 1, Seq: 9},
		&types.BeaconShare{Round: 2, Signer: 1, Share: []byte{1, 2, 3}},
		&types.BlockMsg{Block: &types.Block{Round: 1, Proposer: 0}},
	}
	for _, m := range msgs {
		p.Submit(transport.Envelope{From: 3, Msg: m})
	}
	drain(t, p, len(msgs), 5*time.Second)
}

// TestPipelineConcurrentIngest hammers one pipeline from many producers
// while a consumer drains — the -race workhorse for the worker pool and
// digest cache.
func TestPipelineConcurrentIngest(t *testing.T) {
	f := newFixture(t, 4)
	reg := obs.NewRegistry()
	p := New(pool.NewVerifier(f.pub, pool.VerifyFull), Options{Workers: 4, CacheSize: 64, Registry: reg})
	defer p.Close()

	const producers = 4
	const perProducer = 50
	// Pre-sign a small artifact set so producers overlap on identical
	// digests (exercising cache hits) and distinct ones (misses).
	shares := make([]*types.NotarizationShare, 25)
	for i := range shares {
		bh := hash.SumUint64(hash.DomainBlock, uint64(i))
		shares[i] = f.nshare(types.Round(i+1), 0, types.PartyID(i%4), bh)
	}
	var wg sync.WaitGroup
	wg.Add(producers)
	for pr := 0; pr < producers; pr++ {
		go func(pr int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				p.Submit(transport.Envelope{From: types.PartyID(pr), Msg: shares[(pr+i)%len(shares)]})
			}
		}(pr)
	}
	drain(t, p, producers*perProducer, 10*time.Second)
	wg.Wait()
	snap := reg.Snapshot()
	hits := snap["icc_verify_cache_hits_total"]
	misses := snap["icc_verify_cache_misses_total"]
	if hits+misses != producers*perProducer {
		t.Fatalf("hits %v + misses %v != %d submitted", hits, misses, producers*perProducer)
	}
	if hits == 0 {
		t.Fatal("no cache hits despite duplicate artifacts")
	}
}

// TestPipelineCacheEviction verifies the FIFO digest cache stays
// bounded and that evicted artifacts simply re-verify.
func TestPipelineCacheEviction(t *testing.T) {
	c := newDigestCache(4)
	var digests []hash.Digest
	for i := 0; i < 10; i++ {
		d := hash.SumUint64(hash.DomainBlock, uint64(i))
		digests = append(digests, d)
		c.insert(d)
		if c.Len() > 4 {
			t.Fatalf("cache grew to %d entries, bound is 4", c.Len())
		}
	}
	// The last four inserted survive; the first six were evicted.
	for i, d := range digests {
		if got, want := c.contains(d), i >= 6; got != want {
			t.Fatalf("digest %d: contains = %v, want %v", i, got, want)
		}
	}
	// Re-inserting an evicted digest works.
	c.insert(digests[0])
	if !c.contains(digests[0]) {
		t.Fatal("re-inserted digest missing")
	}
}

// TestPipelineShutdownDuringInFlight closes the pipeline while
// producers are mid-submit and workers hold in-flight envelopes; under
// -race this catches close/worker/submit races.
func TestPipelineShutdownDuringInFlight(t *testing.T) {
	f := newFixture(t, 4)
	for round := 0; round < 5; round++ {
		p := New(pool.NewVerifier(f.pub, pool.VerifyFull), Options{Workers: 3, QueueSize: 8})
		var wg sync.WaitGroup
		wg.Add(2)
		for g := 0; g < 2; g++ {
			go func(g int) {
				defer wg.Done()
				for i := 0; ; i++ {
					bh := hash.SumUint64(hash.DomainBlock, uint64(i))
					if !p.Submit(transport.Envelope{From: types.PartyID(g), Msg: f.nshare(types.Round(i+1), 0, 1, bh)}) {
						return // closed
					}
				}
			}(g)
		}
		// Let work pile up, then pull the plug with no consumer draining:
		// workers blocked on the out channel must still exit.
		time.Sleep(10 * time.Millisecond)
		p.Close()
		wg.Wait()
		if !p.Closed() {
			t.Fatal("pipeline not closed")
		}
	}
}

func TestPipelineDisabledCache(t *testing.T) {
	f := newFixture(t, 4)
	reg := obs.NewRegistry()
	p := New(pool.NewVerifier(f.pub, pool.VerifyFull), Options{Workers: 1, CacheSize: -1, Registry: reg})
	defer p.Close()
	bh := hash.SumUint64(hash.DomainBlock, 1)
	s := f.nshare(1, 0, 1, bh)
	p.Submit(transport.Envelope{From: 1, Msg: s})
	p.Submit(transport.Envelope{From: 1, Msg: s})
	drain(t, p, 2, 5*time.Second)
	snap := reg.Snapshot()
	if snap["icc_verify_cache_hits_total"] != 0 {
		t.Fatal("disabled cache recorded hits")
	}
	if snap["icc_verify_cache_misses_total"] != 0 {
		t.Fatalf("misses = %v with the cache disabled, want 0 (nothing was consulted)",
			snap["icc_verify_cache_misses_total"])
	}
	if snap["icc_verify_verified_total"] != 2 {
		t.Fatalf("verified = %v, want 2 (no cache)", snap["icc_verify_verified_total"])
	}
}
