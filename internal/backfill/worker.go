// Package backfill implements the asynchronous catch-up signer: the
// production core.CatchupProvider. When a responder's catch-up batch
// needs beacon shares that are not in the beacon's own-share cache,
// signing them is a from-scratch EC scalar multiplication per round —
// milliseconds each, tens of seconds for a deep gap — and before this
// package existed that work ran inline in handleStatus, stalling the
// single-threaded engine loop for every laggard (the ROADMAP's worst
// documented stall).
//
// The worker mirrors internal/verify's pipeline discipline: a bounded
// queue fed by a non-blocking enqueue (the engine never waits), worker
// goroutines doing the expensive cryptography, and results leaving
// through the transport directly — completed share batches are unicast
// to the lagging peer as ordinary bundles, so they re-enter the
// laggard's pool through the same verification paths as any other
// traffic and safety is untouched.
//
// Dropped requests are deliberate, not exceptional: the laggard repeats
// its Status every ResyncInterval while it remains behind, re-deriving
// whatever is still missing. Dropping under pressure (full queue, a
// request for the same peer already in flight, shutdown) costs one
// interval of latency, never correctness.
package backfill

import (
	"sync"
	"time"

	"icc/internal/checkpoint"
	"icc/internal/core"
	"icc/internal/obs"
	"icc/internal/types"
)

// ShareSigner is the slice of beacon.Source the worker needs. The
// production value is the party's own *beacon.Beacon, which is safe for
// concurrent use with the engine loop.
type ShareSigner interface {
	ShareForRound(k types.Round) (*types.BeaconShare, error)
}

// Sender is the slice of transport.Endpoint the worker needs. Sends
// must not block indefinitely; both transport implementations enqueue
// or drop.
type Sender interface {
	Send(to types.PartyID, m types.Message) error
}

// Options tunes a Worker. The zero value selects sensible defaults.
type Options struct {
	// Workers is the number of signing goroutines (0 → 1). Signing is
	// serialized per beacon anyway only by its short critical sections,
	// so more workers help when several laggards request at once.
	Workers int
	// QueueSize bounds pending requests (0 → 64). One request covers up
	// to ResyncBatch rounds, so even the default absorbs far more
	// laggards than a cluster has peers.
	QueueSize int
	// Registry receives the worker's instruments (nil → none).
	Registry *obs.Registry
	// Checkpoints, if non-nil, lets the worker serve checkpoint
	// transfers (core.CheckpointProvider) to peers stuck behind the
	// prune horizon. The store is safe for concurrent use, so the blob
	// read happens off the engine loop like everything else here.
	Checkpoints *checkpoint.Store
}

// Worker signs queued catch-up beacon shares off the engine loop and
// unicasts them to lagging peers. Create with New, hand to the engine
// as core.Config.Catchup, and Close when the runtime stops. All methods
// are safe for concurrent use.
type Worker struct {
	signer      ShareSigner
	sender      Sender
	checkpoints *checkpoint.Store
	in          chan core.BackfillRequest
	ckptIn      chan core.CheckpointRequest
	done        chan struct{}
	wg          sync.WaitGroup
	once        sync.Once

	// inflight dedupes per peer: while one request for a peer is queued
	// or being signed, further requests for that peer are dropped — the
	// bound on in-flight work per laggard.
	mu       sync.Mutex
	inflight map[types.PartyID]bool

	requests  *obs.Counter
	dropped   *obs.CounterVec
	shares    *obs.Counter
	transfers *obs.Counter
	depth     *obs.Gauge
	latency   *obs.Histogram
}

var (
	_ core.CatchupProvider    = (*Worker)(nil)
	_ core.CheckpointProvider = (*Worker)(nil)
)

// New builds and starts a worker signing with signer and delivering
// through sender.
func New(signer ShareSigner, sender Sender, opts Options) *Worker {
	workers := opts.Workers
	if workers <= 0 {
		workers = 1
	}
	queue := opts.QueueSize
	if queue <= 0 {
		queue = 64
	}
	w := &Worker{
		signer:      signer,
		sender:      sender,
		checkpoints: opts.Checkpoints,
		in:          make(chan core.BackfillRequest, queue),
		ckptIn:      make(chan core.CheckpointRequest, queue),
		done:        make(chan struct{}),
		inflight:    make(map[types.PartyID]bool),
	}
	if reg := opts.Registry; reg != nil {
		w.requests = reg.Counter("icc_resync_backfill_requests_total", "Backfill share requests accepted by the worker queue.")
		w.dropped = reg.CounterVec("icc_resync_backfill_dropped_total", "Backfill requests dropped, by reason.", "reason")
		w.shares = reg.Counter("icc_resync_backfill_shares_total", "Beacon shares signed and sent by the backfill worker.")
		w.transfers = reg.Counter("icc_checkpoint_transfers_total", "Checkpoint blobs unicast to peers stuck behind the prune horizon.")
		w.depth = reg.Gauge("icc_resync_backfill_queue_depth", "Backfill requests waiting for a signing worker.")
		w.latency = reg.Histogram("icc_resync_backfill_latency_seconds", "Per-request backfill signing+send latency.", nil)
	}
	w.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go w.run()
	}
	return w
}

// EnqueueBackfill implements core.CatchupProvider. It never blocks: the
// request is dropped (false) when the worker is closed, a request for
// the same peer is already in flight, or the queue is full.
func (w *Worker) EnqueueBackfill(req core.BackfillRequest) bool {
	if len(req.Rounds) == 0 {
		return false
	}
	select {
	case <-w.done:
		w.dropped.With("closed").Inc()
		return false
	default:
	}
	w.mu.Lock()
	if w.inflight[req.Peer] {
		w.mu.Unlock()
		w.dropped.With("inflight").Inc()
		return false
	}
	w.inflight[req.Peer] = true
	w.mu.Unlock()
	select {
	case w.in <- req:
		w.requests.Inc()
		w.depth.Add(1)
		return true
	default:
		w.clearInflight(req.Peer)
		w.dropped.With("full").Inc()
		return false
	}
}

// EnqueueCheckpoint implements core.CheckpointProvider with the same
// non-blocking, per-peer-deduped discipline as EnqueueBackfill. Returns
// false when no checkpoint store is wired.
func (w *Worker) EnqueueCheckpoint(req core.CheckpointRequest) bool {
	if w.checkpoints == nil {
		return false
	}
	select {
	case <-w.done:
		w.dropped.With("closed").Inc()
		return false
	default:
	}
	w.mu.Lock()
	if w.inflight[req.Peer] {
		w.mu.Unlock()
		w.dropped.With("inflight").Inc()
		return false
	}
	w.inflight[req.Peer] = true
	w.mu.Unlock()
	select {
	case w.ckptIn <- req:
		w.requests.Inc()
		w.depth.Add(1)
		return true
	default:
		w.clearInflight(req.Peer)
		w.dropped.With("full").Inc()
		return false
	}
}

// Close stops the workers and releases the queue. Requests still queued
// are dropped; the laggards they belonged to simply re-ask. Safe to
// call more than once.
func (w *Worker) Close() {
	w.once.Do(func() { close(w.done) })
	w.wg.Wait()
}

func (w *Worker) clearInflight(p types.PartyID) {
	w.mu.Lock()
	delete(w.inflight, p)
	w.mu.Unlock()
}

func (w *Worker) run() {
	defer w.wg.Done()
	for {
		select {
		case <-w.done:
			return
		case req := <-w.in:
			w.depth.Add(-1)
			start := time.Now()
			w.process(req)
			w.latency.Observe(time.Since(start).Seconds())
		case req := <-w.ckptIn:
			w.depth.Add(-1)
			start := time.Now()
			w.processCheckpoint(req)
			w.latency.Observe(time.Since(start).Seconds())
		}
	}
}

// processCheckpoint ships the latest certified checkpoint to a peer. The
// store caches the encoded blob, so this is a map read plus one send.
func (w *Worker) processCheckpoint(req core.CheckpointRequest) {
	defer w.clearInflight(req.Peer)
	raw, round, ok := w.checkpoints.LatestEncoded()
	if !ok || round <= req.MinRound {
		return // raced with retention or the peer advanced; it will re-ask
	}
	w.transfers.Inc()
	// Resync-marked: the transfer rides the laggard's priority lane.
	_ = w.sender.Send(req.Peer, &types.Bundle{Messages: []types.Message{&types.CheckpointMsg{Blob: raw}}, Resync: true})
}

// process signs the requested rounds and unicasts the batch. Rounds
// that fail to sign — pruned below the beacon watermark (ErrPruned) or
// with R_{k−1} still unknown — are skipped: the artifacts would be
// useless or impossible, and the laggard's next Status narrows the ask.
func (w *Worker) process(req core.BackfillRequest) {
	msgs := make([]types.Message, 0, len(req.Rounds))
	for _, k := range req.Rounds {
		sh, err := w.signer.ShareForRound(k)
		if err != nil {
			continue
		}
		msgs = append(msgs, sh)
	}
	// Clear the in-flight mark before sending: once the shares are
	// signed (and cached by the beacon), a fresh request for the same
	// peer is cheap and must not be refused.
	w.clearInflight(req.Peer)
	if len(msgs) == 0 {
		return
	}
	w.shares.Add(int64(len(msgs)))
	// Resync-marked: backfill replies are catch-up traffic and ride the
	// laggard's verify-pipeline priority lane.
	_ = w.sender.Send(req.Peer, &types.Bundle{Messages: msgs, Resync: true})
}
