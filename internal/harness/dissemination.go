package harness

import (
	"fmt"

	"icc/internal/beacon"
	"icc/internal/engine"
	"icc/internal/gossip"
	"icc/internal/pool"
	"icc/internal/rbc"
	"icc/internal/types"
)

// wrapDissemination applies the mode's dissemination wrapper: the
// identity for ICC0, the gossip sub-layer for ICC1, and the
// erasure-coded reliable broadcast for ICC2.
func (c *Cluster) wrapDissemination(pid types.PartyID, inner engine.Engine) (engine.Engine, error) {
	switch c.Opts.Mode {
	case ICC1:
		fanout := c.Opts.GossipFanout
		if fanout <= 0 {
			fanout = defaultFanout(c.Opts.N)
		}
		cfg := gossip.Config{
			Self:             pid,
			N:                c.Opts.N,
			Fanout:           fanout,
			Seed:             c.Opts.Seed,
			ShareBatchWindow: c.Opts.GossipBatchWindow,
			AdaptiveBatch:    c.Opts.GossipAdaptiveBatch,
			Aggregate:        c.Opts.GossipAggregate,
			// VerifySharesOnly sweeps already trust locally combined
			// aggregates; relay-side combination rests on the same basis.
			// Under VerifyFull relays verify shares while combining.
			TrustShares: c.Opts.Verify != pool.VerifyFull,
			Keys:        c.Pub,
		}
		if c.Opts.BeaconOutputs {
			src, ok := c.beacons[pid].(beacon.OutputSource)
			if !ok {
				return nil, fmt.Errorf("beacon backend has no verifiable outputs (enable SimBeacon)")
			}
			cfg.Outputs = src
		}
		return gossip.New(cfg, inner)
	case ICC2:
		return rbc.Wrap(rbc.Config{
			Self: pid,
			N:    c.Opts.N,
		}, inner), nil
	default:
		return inner, nil
	}
}

// defaultFanout chooses a gossip fanout that keeps the overlay connected
// with overwhelming probability: ≈ 2·log2(n) + 2, clamped to n−1.
func defaultFanout(n int) int {
	f := 2
	for v := n; v > 1; v >>= 1 {
		f += 2
	}
	if f > n-1 {
		f = n - 1
	}
	return f
}
