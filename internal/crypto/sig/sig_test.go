package sig

import (
	"crypto/rand"
	"testing"

	"icc/internal/crypto/hash"
)

const domain = hash.Domain("test/sig")

func TestSignVerify(t *testing.T) {
	pub, priv, err := GenerateKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("authenticate this block")
	s := Sign(priv, domain, msg)
	if len(s) != SignatureLen {
		t.Fatalf("signature length %d", len(s))
	}
	if err := Verify(pub, domain, msg, s); err != nil {
		t.Fatalf("valid signature rejected: %v", err)
	}
}

func TestVerifyRejectsTampering(t *testing.T) {
	pub, priv, err := GenerateKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("m")
	s := Sign(priv, domain, msg)
	if err := Verify(pub, domain, []byte("other"), s); err == nil {
		t.Fatal("wrong message verified")
	}
	if err := Verify(pub, hash.Domain("test/other"), msg, s); err == nil {
		t.Fatal("wrong domain verified")
	}
	bad := append([]byte(nil), s...)
	bad[0] ^= 1
	if err := Verify(pub, domain, msg, bad); err == nil {
		t.Fatal("tampered signature verified")
	}
	otherPub, _, _ := GenerateKey(rand.Reader)
	if err := Verify(otherPub, domain, msg, s); err == nil {
		t.Fatal("wrong key verified")
	}
}

func TestVerifyRejectsBadKeyLength(t *testing.T) {
	if err := Verify(PublicKey{1, 2, 3}, domain, []byte("m"), make([]byte, SignatureLen)); err == nil {
		t.Fatal("short public key accepted")
	}
}

func BenchmarkSign(b *testing.B) {
	_, priv, _ := GenerateKey(rand.Reader)
	msg := []byte("bench")
	for i := 0; i < b.N; i++ {
		Sign(priv, domain, msg)
	}
}

func BenchmarkVerify(b *testing.B) {
	pub, priv, _ := GenerateKey(rand.Reader)
	msg := []byte("bench")
	s := Sign(priv, domain, msg)
	for i := 0; i < b.N; i++ {
		if err := Verify(pub, domain, msg, s); err != nil {
			b.Fatal(err)
		}
	}
}
