package runtime

import (
	"sync"
	"testing"
	"time"

	"icc/internal/clock"
	"icc/internal/engine"
	"icc/internal/transport"
	"icc/internal/types"
)

// pingEngine broadcasts one message at Init, counts receipts, and asks
// for a tick shortly after start.
type pingEngine struct {
	mu       sync.Mutex
	id       types.PartyID
	received int
	ticks    int
	wakeAt   time.Duration
	woken    bool
}

func (p *pingEngine) ID() types.PartyID { return p.id }

func (p *pingEngine) Init(now time.Duration) []engine.Output {
	return []engine.Output{engine.Broadcast(&types.BeaconShare{Round: 1, Signer: p.id, Share: []byte{byte(p.id)}})}
}

func (p *pingEngine) HandleMessage(_ types.PartyID, _ types.Message, _ time.Duration) []engine.Output {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.received++
	return nil
}

func (p *pingEngine) Tick(now time.Duration) []engine.Output {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.ticks++
	p.woken = true
	return nil
}

func (p *pingEngine) NextWake(now time.Duration) (time.Duration, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.woken {
		return 0, false
	}
	return p.wakeAt, true
}

func (p *pingEngine) CurrentRound() types.Round { return 1 }

func (p *pingEngine) snapshot() (int, int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.received, p.ticks
}

func TestRunnersExchangeMessages(t *testing.T) {
	const n = 3
	hub := transport.NewInproc(n)
	defer hub.Close()
	clk := clock.NewWall()
	engines := make([]*pingEngine, n)
	runners := make([]*Runner, n)
	for i := 0; i < n; i++ {
		engines[i] = &pingEngine{id: types.PartyID(i), wakeAt: 20 * time.Millisecond}
		runners[i] = NewRunner(engines[i], hub.Endpoint(types.PartyID(i)), clk, n)
		runners[i].Start()
	}
	defer func() {
		for _, r := range runners {
			r.Stop()
		}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		ok := true
		for _, e := range engines {
			recv, ticks := e.snapshot()
			if recv != n-1 || ticks == 0 {
				ok = false
				break
			}
		}
		if ok {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	for i, e := range engines {
		recv, ticks := e.snapshot()
		t.Logf("engine %d: received %d, ticks %d", i, recv, ticks)
	}
	t.Fatal("runners did not exchange messages and tick")
}

func TestStopIsIdempotentAndTerminates(t *testing.T) {
	hub := transport.NewInproc(1)
	defer hub.Close()
	e := &pingEngine{id: 0, wakeAt: time.Hour}
	r := NewRunner(e, hub.Endpoint(0), clock.NewWall(), 1)
	r.Start()
	done := make(chan struct{})
	go func() {
		r.Stop()
		r.Stop()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Stop hung")
	}
}

func TestRunnerExitsWhenInboxCloses(t *testing.T) {
	hub := transport.NewInproc(1)
	e := &pingEngine{id: 0, wakeAt: time.Hour}
	r := NewRunner(e, hub.Endpoint(0), clock.NewWall(), 1)
	r.Start()
	hub.Close() // closes the inbox channel
	done := make(chan struct{})
	go func() {
		r.Stop() // must return promptly because the loop already exited
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("runner did not exit on closed inbox")
	}
}
