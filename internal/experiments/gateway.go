package experiments

import (
	"context"
	"crypto/rand"
	"fmt"
	"sync"
	"time"

	"icc/internal/beacon"
	"icc/internal/clock"
	"icc/internal/core"
	"icc/internal/crypto/keys"
	"icc/internal/gateway"
	"icc/internal/pool"
	rt "icc/internal/runtime"
	"icc/internal/statemachine"
	"icc/internal/transport"
	"icc/internal/types"
	"icc/internal/verify"
)

// Gateway measures the client-facing ingress end to end (E12): an
// open-loop load generator drives /v1-equivalent Submit calls against a
// live four-party cluster at fixed rates and key skews, and the table
// reports submit→finalize latency percentiles plus the two correctness
// properties the API promises:
//
//   - acks only at finality: every acknowledged command is observable
//     in the acknowledging replica's finalized KV at ack time;
//   - read-your-writes: a read with the Receipt's commit-index token
//     observes the write on every party, not just the submission party.
//
// Both are counted as violations (must be 0). Backpressure shows up in
// the reject column: an open loop over a full backlog loses ticks at
// admission instead of queueing unboundedly.
func Gateway(scale Scale) *Table {
	t := &Table{
		ID:      "E12",
		Title:   "client gateway: open-loop submit→finalize latency, backpressure, read-your-writes",
		Columns: []string{"rate", "skew", "submitted", "acked", "rejected", "p50", "p99", "ryw", "ack<final"},
		Notes: []string{
			"4 parties, in-process transport, Δbnd 20ms, open-loop load for the configured window",
			"ryw: read-your-writes probes (write via one party, read with token on every party) — violations/probes",
			"ack<final: acked commands not present in finalized local state at ack time (must be 0)",
			"rejected: ErrBacklogFull admission rejections (lost open-loop ticks, never queued)",
		},
	}
	window := time.Duration(float64(4*time.Second) * scaleFactor(scale))
	if window < 500*time.Millisecond {
		window = 500 * time.Millisecond
	}
	configs := []struct {
		rate int
		skew float64
	}{
		{200, 0},
		{200, 1.2},
		{1000, 0},
		{1000, 1.2},
	}
	cl := newGatewayCluster()
	defer cl.stop()
	for i, cfg := range configs {
		rep, probes, rywViol, ackViol := cl.run(cfg.rate, cfg.skew, window, uint64(1000*(i+1)))
		skew := "uniform"
		if cfg.skew > 0 {
			skew = fmt.Sprintf("zipf %.1f", cfg.skew)
		}
		t.AddRow(
			fmt.Sprintf("%d/s", cfg.rate),
			skew,
			fmt.Sprintf("%d", rep.Submitted),
			fmt.Sprintf("%d", rep.Acked),
			fmt.Sprintf("%d", rep.Rejected),
			fmt.Sprintf("%.1fms", rep.P50.Seconds()*1000),
			fmt.Sprintf("%.1fms", rep.P99.Seconds()*1000),
			fmt.Sprintf("%d/%d", rywViol, probes),
			fmt.Sprintf("%d", ackViol),
		)
		prefix := fmt.Sprintf("rate%d_%s", cfg.rate, map[bool]string{true: "zipf", false: "uniform"}[cfg.skew > 0])
		t.SetMetric(prefix+"_p50_ms", rep.P50.Seconds()*1000)
		t.SetMetric(prefix+"_p99_ms", rep.P99.Seconds()*1000)
		t.SetMetric(prefix+"_acked", float64(rep.Acked))
		t.SetMetric(prefix+"_rejected", float64(rep.Rejected))
		t.SetMetric(prefix+"_ryw_violations", float64(rywViol))
		t.SetMetric(prefix+"_ack_before_final", float64(ackViol))
	}
	return t
}

// scaleFactor maps Scale onto (0, 1] for wall-clock windows.
func scaleFactor(s Scale) float64 {
	if s <= 0 || s >= 1 {
		return 1
	}
	return float64(s)
}

// gatewayCluster is a live 4-party cluster with a gateway per replica,
// assembled from the internals the facade uses (the experiment measures
// the gateway layer itself, without facade indirection).
type gatewayCluster struct {
	n       int
	hub     *transport.Inproc
	runners []*rt.Runner
	queues  []*statemachine.Queue
	kvs     []*statemachine.KV
	gws     []*gateway.Gateway
}

func newGatewayCluster() *gatewayCluster {
	const n = 4
	pub, privs, err := keys.Deal(rand.Reader, n)
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	cl := &gatewayCluster{
		n:       n,
		hub:     transport.NewInproc(n),
		runners: make([]*rt.Runner, n),
		queues:  make([]*statemachine.Queue, n),
		kvs:     make([]*statemachine.KV, n),
		gws:     make([]*gateway.Gateway, n),
	}
	clk := clock.NewWall()
	for i := 0; i < n; i++ {
		i := i
		pid := types.PartyID(i)
		cl.queues[i] = statemachine.NewQueue()
		cl.kvs[i] = statemachine.NewKV()
		cl.gws[i] = gateway.New(cl.queues[i], cl.kvs[i], gateway.Options{Party: i})
		eng := core.NewEngine(core.Config{
			Self:       pid,
			Keys:       pub,
			Priv:       privs[i],
			Beacon:     beacon.New(pub.Beacon, privs[i].Beacon, pid, pub.GenesisSeed),
			DeltaBound: 20 * time.Millisecond,
			Payload:    cl.queues[i],
			PruneDepth: core.DefaultPruneDepth,
			Pool:       pool.Options{Policy: pool.VerifyPreVerified},
			Hooks: core.Hooks{
				OnCommit: func(b *types.Block, _ time.Duration) {
					_ = cl.kvs[i].Apply(b.Payload)
					cl.queues[i].MarkCommitted(b.Payload)
					cl.gws[i].ObserveCommit(uint64(b.Round), b.Payload)
				},
			},
		})
		r := rt.NewRunner(eng, cl.hub.Endpoint(pid), clk, n)
		r.SetVerifyPipeline(verify.New(pool.NewVerifier(pub, pool.VerifyFull), verify.Options{}))
		cl.runners[i] = r
	}
	for _, g := range cl.gws {
		g.Start()
	}
	for _, r := range cl.runners {
		r.Start()
	}
	return cl
}

func (cl *gatewayCluster) stop() {
	for _, g := range cl.gws {
		g.Stop()
	}
	for _, r := range cl.runners {
		r.Stop()
	}
	cl.hub.Close()
}

// run performs one load window followed by the correctness probes.
func (cl *gatewayCluster) run(rate int, skew float64, window time.Duration, clientBase uint64) (rep *gateway.LoadReport, probes, rywViol, ackViol int) {
	ctx := context.Background()
	rep, err := gateway.RunLoad(ctx, cl.gws, gateway.LoadOptions{
		Rate:       rate,
		Duration:   window,
		Clients:    16,
		ClientBase: clientBase,
		Keys:       512,
		Skew:       skew,
		ValueBytes: 64,
		Seed:       int64(clientBase),
	})
	if err != nil {
		panic(fmt.Sprintf("experiments: load: %v", err))
	}

	// Correctness probes: unique-key writes acknowledged at finality,
	// then read back with the commit-index token on every party. The
	// probes run concurrently — they are independent clients.
	const nProbes = 16
	probeCtx, cancel := context.WithTimeout(ctx, time.Minute)
	defer cancel()
	var (
		mu sync.Mutex
		wg sync.WaitGroup
	)
	for p := 0; p < nProbes; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			gw := cl.gws[p%cl.n]
			key := fmt.Sprintf("probe/%d/%d", clientBase, p)
			want := []byte(fmt.Sprintf("v%d", p))
			receipt, err := gw.Submit(probeCtx, statemachine.Command{
				Client: clientBase + 500 + uint64(p),
				Seq:    1,
				Op:     statemachine.OpSet,
				Key:    key,
				Value:  want,
			})
			if err != nil {
				return
			}
			ack, err := receipt.Wait(probeCtx)
			if err != nil {
				return
			}
			// Ack honesty: the write must already be in the acknowledging
			// replica's finalized state — an ack before apply would be an
			// ack before finality.
			ackBad := 0
			if v, ok := cl.kvs[p%cl.n].Get(key); !ok || string(v) != string(want) {
				ackBad = 1
			}
			// Read-your-writes: the token must make the write visible on
			// every replica, including ones that have not applied the
			// round yet at probe time.
			rywBad := 0
			for q := 0; q < cl.n; q++ {
				res, err := cl.gws[q].Read(probeCtx, key, ack.CommitIndex)
				if err != nil || !res.Found || string(res.Value) != string(want) {
					rywBad++
				}
			}
			mu.Lock()
			probes++
			ackViol += ackBad
			rywViol += rywBad
			mu.Unlock()
		}()
	}
	wg.Wait()
	return rep, probes, rywViol, ackViol
}
