package bls

import "math/big"

// fp6 is Fp2[v]/(v³ − ξ): b0 + b1·v + b2·v², ξ = 1 + u.
type fp6 struct {
	b0, b1, b2 fp2
}

func fp6Zero() fp6 { return fp6{fp2Zero(), fp2Zero(), fp2Zero()} }
func fp6One() fp6  { return fp6{fp2One(), fp2Zero(), fp2Zero()} }

func (x fp6) isZero() bool { return x.b0.isZero() && x.b1.isZero() && x.b2.isZero() }

func (x fp6) equal(y fp6) bool {
	return x.b0.equal(y.b0) && x.b1.equal(y.b1) && x.b2.equal(y.b2)
}

func (x fp6) add(y fp6) fp6 { return fp6{x.b0.add(y.b0), x.b1.add(y.b1), x.b2.add(y.b2)} }

func (x fp6) sub(y fp6) fp6 { return fp6{x.b0.sub(y.b0), x.b1.sub(y.b1), x.b2.sub(y.b2)} }

func (x fp6) neg() fp6 { return fp6{x.b0.neg(), x.b1.neg(), x.b2.neg()} }

// mul is schoolbook multiplication with v³ = ξ reduction.
func (x fp6) mul(y fp6) fp6 {
	t00 := x.b0.mul(y.b0)
	t01 := x.b0.mul(y.b1)
	t02 := x.b0.mul(y.b2)
	t10 := x.b1.mul(y.b0)
	t11 := x.b1.mul(y.b1)
	t12 := x.b1.mul(y.b2)
	t20 := x.b2.mul(y.b0)
	t21 := x.b2.mul(y.b1)
	t22 := x.b2.mul(y.b2)
	// v⁰: t00 + ξ(t12 + t21)
	c0 := t00.add(t12.add(t21).mulXi())
	// v¹: t01 + t10 + ξ·t22
	c1 := t01.add(t10).add(t22.mulXi())
	// v²: t02 + t11 + t20
	c2 := t02.add(t11).add(t20)
	return fp6{c0, c1, c2}
}

func (x fp6) square() fp6 { return x.mul(x) }

// mulV multiplies by v: (b0 + b1·v + b2·v²)·v = ξ·b2 + b0·v + b1·v².
func (x fp6) mulV() fp6 { return fp6{x.b2.mulXi(), x.b0, x.b1} }

// inv inverts via the standard norm construction for cubic extensions.
func (x fp6) inv() fp6 {
	// c0 = b0² − ξ·b1·b2
	c0 := x.b0.square().sub(x.b1.mul(x.b2).mulXi())
	// c1 = ξ·b2² − b0·b1
	c1 := x.b2.square().mulXi().sub(x.b0.mul(x.b1))
	// c2 = b1² − b0·b2
	c2 := x.b1.square().sub(x.b0.mul(x.b2))
	// norm = b0·c0 + ξ(b1·c2 + b2·c1)
	norm := x.b0.mul(c0).add(x.b1.mul(c2).add(x.b2.mul(c1)).mulXi())
	ni := norm.inv()
	return fp6{c0.mul(ni), c1.mul(ni), c2.mul(ni)}
}

// fp12 is Fp6[w]/(w² − v): c0 + c1·w.
type fp12 struct {
	c0, c1 fp6
}

func fp12One() fp12 { return fp12{fp6One(), fp6Zero()} }

func (x fp12) isZero() bool { return x.c0.isZero() && x.c1.isZero() }

func (x fp12) equal(y fp12) bool { return x.c0.equal(y.c0) && x.c1.equal(y.c1) }

func (x fp12) add(y fp12) fp12 { return fp12{x.c0.add(y.c0), x.c1.add(y.c1)} }

func (x fp12) sub(y fp12) fp12 { return fp12{x.c0.sub(y.c0), x.c1.sub(y.c1)} }

// mul: (c0 + c1·w)(d0 + d1·w) = (c0d0 + v·c1d1) + (c0d1 + c1d0)·w.
func (x fp12) mul(y fp12) fp12 {
	t0 := x.c0.mul(y.c0)
	t1 := x.c1.mul(y.c1)
	t2 := x.c0.add(x.c1).mul(y.c0.add(y.c1))
	lo := t0.add(t1.mulV())
	hi := t2.sub(t0).sub(t1)
	return fp12{lo, hi}
}

func (x fp12) square() fp12 { return x.mul(x) }

// inv: 1/(c0 + c1·w) = (c0 − c1·w)/(c0² − v·c1²).
func (x fp12) inv() fp12 {
	norm := x.c0.square().sub(x.c1.square().mulV())
	ni := norm.inv()
	return fp12{x.c0.mul(ni), x.c1.neg().mul(ni)}
}

// exp computes x^e for e ≥ 0 by square-and-multiply.
func (x fp12) exp(e *big.Int) fp12 {
	if e.Sign() == 0 {
		return fp12One()
	}
	acc := fp12One()
	for i := e.BitLen() - 1; i >= 0; i-- {
		acc = acc.square()
		if e.Bit(i) == 1 {
			acc = acc.mul(x)
		}
	}
	return acc
}

// fp12FromFp2 embeds an Fp2 element into Fp12 (as c0.b0).
func fp12FromFp2(a fp2) fp12 {
	return fp12{fp6{a, fp2Zero(), fp2Zero()}, fp6Zero()}
}

// fp12FromFp embeds a base-field element.
func fp12FromFp(a *big.Int) fp12 {
	v := new(big.Int).Mod(a, P)
	return fp12FromFp2(fp2{v, new(big.Int)})
}

// wPow returns w^k for k in {1, 2, 3} — the twisting constants:
// w² = v, w³ = v·w.
func wPow(k int) fp12 {
	switch k {
	case 1:
		return fp12{fp6Zero(), fp6One()}
	case 2:
		return fp12{fp6{fp2Zero(), fp2One(), fp2Zero()}, fp6Zero()}
	case 3:
		return fp12{fp6Zero(), fp6{fp2Zero(), fp2One(), fp2Zero()}}
	default:
		panic("bls: unsupported w power")
	}
}
