package baseline

import (
	"time"

	"icc/internal/crypto/hash"
	"icc/internal/engine"
	"icc/internal/types"
)

// Opaque tags for PBFT messages.
const (
	tagPBFTPrePrepare uint8 = 20
	tagPBFTPrepare    uint8 = 21
	tagPBFTCommit     uint8 = 22
	tagPBFTViewChange uint8 = 23
)

// PBFTConfig assembles a PBFT engine.
type PBFTConfig struct {
	Self       types.PartyID
	N          int
	DeltaBound time.Duration // drives the view-change timeout
	Payload    func(seq uint64) []byte
	OnCommit   func(seq uint64, payload []byte, now time.Duration)
	// ProposeDelay delays each pre-prepare after the previous sequence
	// completes — 0 for an honest leader. Setting it just below the
	// view-change timeout reproduces the "slow leader" attack of [15]
	// (the paper's §1 "Robust consensus" discussion): the leader makes
	// just enough progress to never be replaced while throughput
	// collapses.
	ProposeDelay time.Duration
}

// PBFT models Castro–Liskov PBFT [13] far enough for the comparisons the
// paper draws: a stable leader broadcasting pre-prepares, all-to-all
// prepare and commit phases with 2f+1 quorums, and a view-change
// subprotocol on timeout that installs the next leader. Checkpointing
// and the prepared-certificate transfer of the full view-change protocol
// are omitted (this baseline is exercised under crash and slow-leader
// faults, where they are not needed); see DESIGN.md §5 scope notes.
type PBFT struct {
	cfg PBFTConfig

	view      uint64
	committed uint64 // highest executed sequence
	// lastProgress is when committed last advanced (view-change timer).
	lastProgress time.Duration

	// Leader state.
	nextSeq     uint64
	proposeAt   time.Duration // earliest time the leader may pre-prepare
	outstanding bool          // a sequence is in flight

	// Per-sequence state.
	digests    map[uint64]hash.Digest
	payloads   map[uint64][]byte
	prepares   map[uint64]map[types.PartyID]struct{}
	commits    map[uint64]map[types.PartyID]struct{}
	sentPrep   map[uint64]bool
	sentCommit map[uint64]bool
	executed   map[uint64]bool

	// View-change votes per proposed view.
	vcVotes map[uint64]map[types.PartyID]struct{}

	out []engine.Output
}

// NewPBFT builds the engine.
func NewPBFT(cfg PBFTConfig) *PBFT {
	if cfg.DeltaBound == 0 {
		cfg.DeltaBound = 100 * time.Millisecond
	}
	if cfg.Payload == nil {
		cfg.Payload = func(uint64) []byte { return nil }
	}
	return &PBFT{
		cfg:        cfg,
		nextSeq:    1,
		digests:    make(map[uint64]hash.Digest),
		payloads:   make(map[uint64][]byte),
		prepares:   make(map[uint64]map[types.PartyID]struct{}),
		commits:    make(map[uint64]map[types.PartyID]struct{}),
		sentPrep:   make(map[uint64]bool),
		sentCommit: make(map[uint64]bool),
		executed:   make(map[uint64]bool),
		vcVotes:    make(map[uint64]map[types.PartyID]struct{}),
	}
}

func (p *PBFT) leader() types.PartyID { return types.PartyID(p.view % uint64(p.cfg.N)) }

func (p *PBFT) quorum() int { return types.NotaryQuorum(p.cfg.N) } // 2f+1 for n=3f+1

func (p *PBFT) timeout() time.Duration { return 4 * p.cfg.DeltaBound }

// ID implements engine.Engine.
func (p *PBFT) ID() types.PartyID { return p.cfg.Self }

// CurrentRound implements engine.Engine (sequence number ≈ round).
func (p *PBFT) CurrentRound() types.Round { return types.Round(p.committed + 1) }

// CommittedSeq returns the highest executed sequence.
func (p *PBFT) CommittedSeq() uint64 { return p.committed }

// Init implements engine.Engine.
func (p *PBFT) Init(now time.Duration) []engine.Output {
	p.lastProgress = now
	p.proposeAt = now + p.cfg.ProposeDelay
	p.step(now)
	return p.drain()
}

// Tick implements engine.Engine.
func (p *PBFT) Tick(now time.Duration) []engine.Output {
	// View change on stalled progress.
	if now >= p.lastProgress+p.timeout() {
		p.lastProgress = now // rate-limit re-votes
		next := p.view + 1
		p.voteViewChange(next, p.cfg.Self)
		p.out = append(p.out, engine.Broadcast(encodePBFTSeq(tagPBFTViewChange, next, hash.Digest{}, nil)))
	}
	p.step(now)
	return p.drain()
}

// NextWake implements engine.Engine.
func (p *PBFT) NextWake(now time.Duration) (time.Duration, bool) {
	next := p.lastProgress + p.timeout()
	if p.leader() == p.cfg.Self && !p.outstanding && p.proposeAt > now && p.proposeAt < next {
		next = p.proposeAt
	}
	return next, true
}

// HandleMessage implements engine.Engine.
func (p *PBFT) HandleMessage(from types.PartyID, m types.Message, now time.Duration) []engine.Output {
	o, ok := m.(*types.Opaque)
	if !ok {
		return nil
	}
	switch o.Tag {
	case tagPBFTPrePrepare:
		seq, digest, payload, okd := decodePBFTSeq(o.Data)
		if okd && p.digests[seq] == (hash.Digest{}) && from == p.leader() {
			p.digests[seq] = digest
			p.payloads[seq] = payload
		}
	case tagPBFTPrepare:
		seq, digest, _, okd := decodePBFTSeq(o.Data)
		if okd {
			addSet(p.prepares, seq, from)
			_ = digest
		}
	case tagPBFTCommit:
		seq, _, _, okd := decodePBFTSeq(o.Data)
		if okd {
			addSet(p.commits, seq, from)
		}
	case tagPBFTViewChange:
		v, _, _, okd := decodePBFTSeq(o.Data)
		if okd && v > p.view {
			p.voteViewChange(v, from)
		}
	}
	p.step(now)
	return p.drain()
}

func addSet(m map[uint64]map[types.PartyID]struct{}, k uint64, p types.PartyID) {
	s := m[k]
	if s == nil {
		s = make(map[types.PartyID]struct{})
		m[k] = s
	}
	s[p] = struct{}{}
}

func (p *PBFT) voteViewChange(v uint64, from types.PartyID) {
	addSet(p.vcVotes, v, from)
	if len(p.vcVotes[v]) >= p.quorum() && v > p.view {
		p.view = v
		p.outstanding = false
		p.nextSeq = p.committed + 1
		// Fresh leader starts its propose clock (with its own delay).
		p.proposeAt = 0
	}
}

func (p *PBFT) drain() []engine.Output {
	out := p.out
	p.out = nil
	return out
}

// step runs the three-phase pipeline.
func (p *PBFT) step(now time.Duration) {
	// Leader proposes the next sequence once the previous one executed
	// and its (possibly malicious) propose delay elapsed.
	if p.leader() == p.cfg.Self && !p.outstanding {
		if p.proposeAt == 0 {
			p.proposeAt = now + p.cfg.ProposeDelay
		}
		if now >= p.proposeAt && p.nextSeq == p.committed+1 {
			seq := p.nextSeq
			payload := p.cfg.Payload(seq)
			digest := hash.Sum("baseline/pbft", payload, []byte{byte(seq)})
			p.digests[seq] = digest
			p.payloads[seq] = payload
			p.outstanding = true
			p.out = append(p.out, engine.Broadcast(encodePBFTSeq(tagPBFTPrePrepare, seq, digest, payload)))
		}
	}
	// Prepare phase.
	for seq, digest := range p.digests {
		if seq != p.committed+1 || p.sentPrep[seq] {
			continue
		}
		p.sentPrep[seq] = true
		addSet(p.prepares, seq, p.cfg.Self)
		p.out = append(p.out, engine.Broadcast(encodePBFTSeq(tagPBFTPrepare, seq, digest, nil)))
	}
	// Commit phase.
	seq := p.committed + 1
	if p.sentPrep[seq] && !p.sentCommit[seq] && len(p.prepares[seq]) >= p.quorum() {
		p.sentCommit[seq] = true
		addSet(p.commits, seq, p.cfg.Self)
		p.out = append(p.out, engine.Broadcast(encodePBFTSeq(tagPBFTCommit, seq, p.digests[seq], nil)))
	}
	// Execute.
	if p.sentCommit[seq] && !p.executed[seq] && len(p.commits[seq]) >= p.quorum() {
		p.executed[seq] = true
		p.committed = seq
		p.lastProgress = now
		if p.cfg.OnCommit != nil {
			p.cfg.OnCommit(seq, p.payloads[seq], now)
		}
		if p.leader() == p.cfg.Self {
			p.outstanding = false
			p.nextSeq = seq + 1
			p.proposeAt = now + p.cfg.ProposeDelay
		}
		// More sequences may already be ready; recurse one step.
		p.step(now)
	}
}

// Wire encoding: u64 seq/view, 32-byte digest, payload, placeholder sig.
func encodePBFTSeq(tag uint8, seq uint64, digest hash.Digest, payload []byte) *types.Opaque {
	e := types.NewEncoder(112 + len(payload))
	e.U64(seq)
	e.Bytes32(digest)
	e.VarBytes(payload)
	e.VarBytes(make([]byte, fakeSigLen))
	return &types.Opaque{Tag: tag, Data: e.Bytes()}
}

func decodePBFTSeq(data []byte) (uint64, hash.Digest, []byte, bool) {
	d := types.NewDecoder(data)
	seq := d.U64()
	digest := d.Bytes32()
	payload := d.VarBytes()
	d.VarBytes()
	return seq, digest, payload, d.Err() == nil
}

var _ engine.Engine = (*PBFT)(nil)
