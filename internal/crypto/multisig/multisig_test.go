package multisig

import (
	"crypto/rand"
	"testing"

	"icc/internal/crypto/hash"
	"icc/internal/crypto/sig"
)

const testDomain = hash.Domain("test/notarization")

func deal(t testing.TB, threshold, n int) (*PublicInfo, []SecretKey) {
	t.Helper()
	pub := &PublicInfo{N: n, Threshold: threshold, Keys: make([]sig.PublicKey, n)}
	keys := make([]SecretKey, n)
	for i := 0; i < n; i++ {
		pk, sk, err := sig.GenerateKey(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		pub.Keys[i] = pk
		keys[i] = SecretKey{Index: i, Key: sk}
	}
	return pub, keys
}

func signAll(keys []SecretKey, msg []byte) []*Share {
	shares := make([]*Share, len(keys))
	for i, k := range keys {
		shares[i] = k.Sign(testDomain, msg)
	}
	return shares
}

func TestSignCombineVerify(t *testing.T) {
	pub, keys := deal(t, 9, 13) // n-t with n=13, t=4
	msg := []byte("notarize block X")
	shares := signAll(keys, msg)
	agg, err := pub.Combine(testDomain, msg, shares)
	if err != nil {
		t.Fatal(err)
	}
	if len(agg.SignerIDs()) != 9 {
		t.Fatalf("aggregate carries %d signers, want 9", len(agg.SignerIDs()))
	}
	if err := pub.Verify(testDomain, msg, agg); err != nil {
		t.Fatalf("valid aggregate rejected: %v", err)
	}
}

func TestVerifyShareRejectsWrongSigner(t *testing.T) {
	pub, keys := deal(t, 2, 4)
	msg := []byte("m")
	s := keys[1].Sign(testDomain, msg)
	s.Signer = 2 // claim someone else's identity
	if err := pub.VerifyShare(testDomain, msg, s); err == nil {
		t.Fatal("share with stolen identity accepted")
	}
	if err := pub.VerifyShare(testDomain, msg, &Share{Signer: -1}); err == nil {
		t.Fatal("negative signer accepted")
	}
	if err := pub.VerifyShare(testDomain, msg, nil); err == nil {
		t.Fatal("nil share accepted")
	}
}

func TestDomainSeparation(t *testing.T) {
	pub, keys := deal(t, 1, 2)
	msg := []byte("m")
	s := keys[0].Sign(hash.Domain("test/finalization"), msg)
	if err := pub.VerifyShare(testDomain, msg, s); err == nil {
		t.Fatal("cross-domain share accepted")
	}
}

func TestCombineSkipsJunk(t *testing.T) {
	pub, keys := deal(t, 3, 5)
	msg := []byte("m")
	good := signAll(keys, msg)
	bad := keys[0].Sign(testDomain, []byte("other message"))
	input := []*Share{nil, bad, good[1], good[1], good[2], good[4]}
	agg, err := pub.Combine(testDomain, msg, input)
	if err != nil {
		t.Fatal(err)
	}
	if err := pub.Verify(testDomain, msg, agg); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 4}
	for i, s := range agg.SignerIDs() {
		if s != want[i] {
			t.Fatalf("signers = %v, want %v", agg.SignerIDs(), want)
		}
	}
}

func TestCombineFailsBelowThreshold(t *testing.T) {
	pub, keys := deal(t, 4, 5)
	msg := []byte("m")
	shares := signAll(keys, msg)
	if _, err := pub.Combine(testDomain, msg, shares[:3]); err == nil {
		t.Fatal("combined below threshold")
	}
}

func TestVerifyRejectsMalformedAggregates(t *testing.T) {
	pub, keys := deal(t, 2, 4)
	msg := []byte("m")
	cert, err := pub.Combine(testDomain, msg, signAll(keys, msg))
	if err != nil {
		t.Fatal(err)
	}
	agg := cert.(*Aggregate)
	cases := map[string]*Aggregate{
		"nil":               nil,
		"too few":           {Signers: agg.Signers[:1], Sigs: agg.Sigs[:1]},
		"length mismatch":   {Signers: agg.Signers, Sigs: agg.Sigs[:1]},
		"duplicate signers": {Signers: []int{1, 1}, Sigs: []([]byte){agg.Sigs[0], agg.Sigs[0]}},
		"unsorted":          {Signers: []int{1, 0}, Sigs: []([]byte){agg.Sigs[1], agg.Sigs[0]}},
		"out of range":      {Signers: []int{0, 9}, Sigs: []([]byte){agg.Sigs[0], agg.Sigs[1]}},
		"bad signature":     {Signers: []int{0, 1}, Sigs: []([]byte){agg.Sigs[1], agg.Sigs[0]}},
	}
	for name, a := range cases {
		if err := pub.Verify(testDomain, msg, a); err == nil {
			t.Fatalf("%s: malformed aggregate accepted", name)
		}
	}
}

func TestVerifyRejectsWrongMessage(t *testing.T) {
	pub, keys := deal(t, 2, 3)
	agg, err := pub.Combine(testDomain, []byte("m1"), signAll(keys, []byte("m1")))
	if err != nil {
		t.Fatal(err)
	}
	if err := pub.Verify(testDomain, []byte("m2"), agg); err == nil {
		t.Fatal("aggregate verified for different message")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	pub, keys := deal(t, 3, 5)
	msg := []byte("wire")
	agg, err := pub.Combine(testDomain, msg, signAll(keys, msg))
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeAggregate(agg.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if err := pub.Verify(testDomain, msg, dec); err != nil {
		t.Fatalf("decoded aggregate rejected: %v", err)
	}
	if _, err := DecodeAggregate([]byte{0}); err == nil {
		t.Fatal("truncated aggregate accepted")
	}
	if _, err := DecodeAggregate(agg.Encode()[:5]); err == nil {
		t.Fatal("short aggregate accepted")
	}
}

func BenchmarkCombine13(b *testing.B) {
	pub, keys := deal(b, 9, 13)
	msg := []byte("bench")
	shares := signAll(keys, msg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pub.Combine(testDomain, msg, shares); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVerifyAggregate13(b *testing.B) {
	pub, keys := deal(b, 9, 13)
	msg := []byte("bench")
	agg, _ := pub.Combine(testDomain, msg, signAll(keys, msg))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := pub.Verify(testDomain, msg, agg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSign13(b *testing.B) {
	_, keys := deal(b, 9, 13)
	msg := []byte("bench")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		keys[i%len(keys)].Sign(testDomain, msg)
	}
}
