// Package verify implements the parallel verification pipeline that
// sits between a runtime transport inbox and the sequential consensus
// engine. Signature checking dominates the engine's critical path under
// load — every inbound authenticator, share, and quorum aggregate costs
// an ed25519 verification — yet it is stateless and embarrassingly
// parallel. The pipeline moves that work onto a pool of workers so the
// single-threaded engine (which the determinism argument of DESIGN.md
// depends on) only ever handles pre-verified input.
//
// Ordering: workers complete out of order, so two messages from the
// same peer may reach the engine reordered. The ICC protocols are
// insensitive to this — every artifact is a self-contained addition to
// a monotone pool, and the paper's network model (§1) already delivers
// with arbitrary per-link delay. The simulation harness keeps the
// synchronous in-engine verification path precisely because its
// determinism contract is stronger than the live runtime's.
//
// Beacon shares pass through unverified by design: checking a share for
// round k needs the round-(k−1) beacon value, which only the engine
// tracks, and beacon.Combine verifies lazily at threshold (t+1 shares)
// anyway.
package verify

import (
	"runtime"
	"sync"
	"time"

	"icc/internal/crypto"
	"icc/internal/crypto/hash"
	"icc/internal/obs"
	"icc/internal/pool"
	"icc/internal/transport"
	"icc/internal/types"
)

// Options tunes a Pipeline. The zero value selects sensible defaults.
type Options struct {
	// Workers is the number of verification goroutines; 0 selects
	// GOMAXPROCS.
	Workers int
	// QueueSize bounds the submission queue (0 → 4×Workers, min 64).
	// A full queue makes Submit block, applying backpressure to the
	// transport reader rather than buffering without bound.
	QueueSize int
	// CacheSize bounds the verified-digest cache (0 → 8192, negative →
	// disabled). The cache makes re-gossiped and resync'd artifacts
	// free: an artifact that verified once is admitted on digest match
	// without re-running its signature checks.
	CacheSize int
	// Registry receives the pipeline's instruments (nil → none).
	Registry *obs.Registry
	// OnReject, if set, observes every artifact the pipeline drops,
	// with the claimed sender and the internal/crypto reason label.
	OnReject func(from types.PartyID, reason string)
}

// Pipeline verifies inbound envelopes on a worker pool. Create with
// New, feed with Submit, consume verified envelopes from Out, and
// Close when done. All methods are safe for concurrent use; Submit and
// Out are safe against a concurrent Close.
type Pipeline struct {
	verifier pool.Verifier
	in       chan transport.Envelope
	out      chan transport.Envelope
	done     chan struct{}
	wg       sync.WaitGroup
	once     sync.Once

	cache *digestCache

	onReject func(from types.PartyID, reason string)

	queueDepth *obs.Gauge
	latency    *obs.Histogram
	verified   *obs.Counter
	cacheHits  *obs.Counter
	cacheMiss  *obs.Counter
	rejects    *obs.CounterVec
}

// New builds and starts a pipeline verifying against v — typically
// pool.NewVerifier(pub, pool.VerifyFull). v must be safe for concurrent
// use.
func New(v pool.Verifier, opts Options) *Pipeline {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	queue := opts.QueueSize
	if queue <= 0 {
		queue = 4 * workers
		if queue < 64 {
			queue = 64
		}
	}
	p := &Pipeline{
		verifier: v,
		in:       make(chan transport.Envelope, queue),
		out:      make(chan transport.Envelope, queue),
		done:     make(chan struct{}),
		cache:    newDigestCache(opts.CacheSize),
		onReject: opts.OnReject,
	}
	if reg := opts.Registry; reg != nil {
		p.queueDepth = reg.Gauge("icc_verify_queue_depth", "Envelopes waiting for a verification worker.")
		p.latency = reg.Histogram("icc_verify_latency_seconds", "Per-envelope verification latency.", nil)
		p.verified = reg.Counter("icc_verify_verified_total", "Artifacts that passed signature verification.")
		p.cacheHits = reg.Counter("icc_verify_cache_hits_total", "Artifacts admitted from the verified-digest cache.")
		p.cacheMiss = reg.Counter("icc_verify_cache_misses_total", "Artifacts that required fresh verification.")
		p.rejects = reg.CounterVec("icc_verify_rejects_total", "Inbound artifacts rejected at admission, by reason.", "reason")
	}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

// Submit queues one envelope for verification. It blocks when the queue
// is full (backpressure) and reports false once the pipeline is closed.
// A caller that is also the sole consumer of Out must use TrySubmit
// and drain Out between attempts instead — blocking here while workers
// block on a full Out channel would deadlock.
func (p *Pipeline) Submit(env transport.Envelope) bool {
	select {
	case p.in <- env:
		p.queueDepth.Add(1)
		return true
	case <-p.done:
		return false
	}
}

// TrySubmit queues one envelope without blocking. It reports false when
// the queue is full or the pipeline is closed (distinguish with Closed).
func (p *Pipeline) TrySubmit(env transport.Envelope) bool {
	select {
	case p.in <- env:
		p.queueDepth.Add(1)
		return true
	default:
		return false
	}
}

// Closed reports whether Close has been called.
func (p *Pipeline) Closed() bool {
	select {
	case <-p.done:
		return true
	default:
		return false
	}
}

// Out delivers verified envelopes. An envelope whose every artifact was
// rejected never appears here.
func (p *Pipeline) Out() <-chan transport.Envelope { return p.out }

// Close stops the workers and releases the pipeline. In-flight
// envelopes may be dropped; the consensus layer tolerates message loss
// by design (resync). Safe to call more than once.
func (p *Pipeline) Close() {
	p.once.Do(func() { close(p.done) })
	p.wg.Wait()
}

func (p *Pipeline) worker() {
	defer p.wg.Done()
	for {
		select {
		case <-p.done:
			return
		case env := <-p.in:
			p.queueDepth.Add(-1)
			start := time.Now()
			msg, ok := p.process(env.From, env.Msg)
			p.latency.Observe(time.Since(start).Seconds())
			if !ok {
				continue
			}
			select {
			case p.out <- transport.Envelope{From: env.From, Msg: msg}:
			case <-p.done:
				return
			}
		}
	}
}

// process verifies one message, returning the (possibly filtered)
// message to deliver and whether to deliver it at all.
func (p *Pipeline) process(from types.PartyID, m types.Message) (types.Message, bool) {
	switch v := m.(type) {
	case *types.Bundle:
		kept := make([]types.Message, 0, len(v.Messages))
		for _, sub := range v.Messages {
			if s, ok := p.process(from, sub); ok {
				kept = append(kept, s)
			}
		}
		if len(kept) == 0 {
			return nil, false
		}
		return &types.Bundle{Messages: kept}, true
	case *types.Authenticator, *types.NotarizationShare, *types.Notarization,
		*types.FinalizationShare, *types.Finalization:
		if err := p.checkCached(m); err != nil {
			p.reject(from, err)
			return nil, false
		}
		return m, true
	default:
		// Blocks carry no signature of their own (the authenticator
		// does); beacon shares verify lazily in beacon.Combine; the
		// remaining kinds (status, gossip, RBC) are control traffic for
		// layers with their own validation.
		return m, true
	}
}

// checkCached verifies one signed artifact, consulting the verified-
// digest cache first. Only successful verifications are cached, keyed
// by the hash of the artifact's canonical encoding — a byte-identical
// redelivery is admitted without touching the verifier.
func (p *Pipeline) checkCached(m types.Message) error {
	var key hash.Digest
	if p.cache != nil {
		key = hash.Sum(hash.DomainPayload, types.Marshal(m))
		if p.cache.contains(key) {
			p.cacheHits.Inc()
			return nil
		}
	}
	if err := p.check(m); err != nil {
		p.cacheMiss.Inc()
		return err
	}
	p.cacheMiss.Inc()
	p.verified.Inc()
	if p.cache != nil {
		p.cache.insert(key)
	}
	return nil
}

func (p *Pipeline) check(m types.Message) error {
	switch v := m.(type) {
	case *types.Authenticator:
		return p.verifier.Authenticator(v)
	case *types.NotarizationShare:
		return p.verifier.NotarizationShare(v)
	case *types.Notarization:
		return p.verifier.Notarization(v)
	case *types.FinalizationShare:
		return p.verifier.FinalizationShare(v)
	case *types.Finalization:
		return p.verifier.Finalization(v)
	default:
		return nil
	}
}

func (p *Pipeline) reject(from types.PartyID, err error) {
	reason := crypto.Reason(err)
	p.rejects.With(reason).Inc()
	if p.onReject != nil {
		p.onReject(from, reason)
	}
}

// digestCache is a bounded FIFO set of verified artifact digests.
// Sized so the working set (the last few rounds of shares and
// aggregates from every peer) stays resident; under churn the oldest
// entries fall out first, which at worst costs a re-verification.
type digestCache struct {
	mu    sync.Mutex
	set   map[hash.Digest]struct{}
	order []hash.Digest // ring buffer of insertion order
	next  int           // next slot to overwrite once full
}

func newDigestCache(size int) *digestCache {
	if size < 0 {
		return nil
	}
	if size == 0 {
		size = 8192
	}
	return &digestCache{
		set:   make(map[hash.Digest]struct{}, size),
		order: make([]hash.Digest, 0, size),
	}
}

func (c *digestCache) contains(d hash.Digest) bool {
	c.mu.Lock()
	_, ok := c.set[d]
	c.mu.Unlock()
	return ok
}

func (c *digestCache) insert(d hash.Digest) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.set[d]; ok {
		return
	}
	if len(c.order) < cap(c.order) {
		c.order = append(c.order, d)
	} else {
		delete(c.set, c.order[c.next])
		c.order[c.next] = d
		c.next = (c.next + 1) % len(c.order)
	}
	c.set[d] = struct{}{}
}

// Len reports the number of cached digests (for tests).
func (c *digestCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.set)
}
