// Package gateway is the client-serving ingress layer on top of the
// replicated state machine (paper §1: the whole construction exists to
// order client commands — this is where the clients actually live).
//
// One Gateway fronts one replica. It redesigns ingress end-to-end:
//
//   - Admission control with TrySubmit-style backpressure: Submit never
//     blocks on a full backlog, it returns ErrBacklogFull (the same
//     discipline the verification pipeline applies to inbound
//     artifacts). Admitted commands are batched into block payloads by
//     the replica's statemachine.Queue.
//   - Acknowledgement only at finality: Submit returns a Receipt whose
//     future resolves when the command is observed in a *finalized*
//     block applied by this replica — never at admission. A queued
//     command that has not committed is not acknowledged, full stop
//     (the honesty property the HashGraph security analyses argue a
//     client surface must keep).
//   - Read-your-writes reads: the resolved Receipt carries a
//     commit-index token (the finalized round that applied the write).
//     Read(key, token) on any party's gateway waits until that party's
//     applied index reaches the token before reading its local KV, so
//     a client that writes through one replica and reads through
//     another still observes its own write.
package gateway

import (
	"context"
	"errors"
	"strconv"
	"sync"
	"time"

	"icc/internal/obs"
	"icc/internal/statemachine"
)

// Client-facing sentinel errors.
var (
	// ErrBacklogFull: the replica's pending backlog is at capacity.
	// Back off and retry; nothing was enqueued.
	ErrBacklogFull = errors.New("gateway: backlog full")
	// ErrNotRunning: the gateway is not serving (before Start or after
	// Stop).
	ErrNotRunning = errors.New("gateway: not running")
	// ErrDuplicate: an identical (client, seq) command is pending or
	// already finalized.
	ErrDuplicate = errors.New("gateway: duplicate (client, seq) command")
	// ErrTooLarge: the command can never fit in a block payload.
	ErrTooLarge = errors.New("gateway: command exceeds payload bound")
	// ErrInvalidSkew: LoadOptions.Skew is outside rand.NewZipf's domain
	// (s must be > 1, or exactly 0 for uniform keys).
	ErrInvalidSkew = errors.New("gateway: invalid Zipf skew")
)

// DefaultMaxBacklog bounds a replica's pending backlog (commands
// admitted but not yet finalized) unless Options override it.
const DefaultMaxBacklog = 4096

// resolvedCap bounds the ring of recently finalized identities kept for
// late Wait lookups (an HTTP client that submitted with wait=false and
// asks for the outcome after finalization).
const resolvedCap = 4096

// Options configures a Gateway.
type Options struct {
	// Party is the replica index, used only for metric labels.
	Party int
	// MaxBacklog bounds admitted-but-unfinalized commands
	// (0 = DefaultMaxBacklog; negative = unbounded).
	MaxBacklog int
	// Registry receives the icc_gateway_* instruments (nil = no metrics).
	Registry *obs.Registry
}

// Gateway fronts one replica: admission over its pending queue,
// finality futures resolved by its committed blocks, reads from its
// local KV gated by the commit index.
type Gateway struct {
	queue *statemachine.Queue
	kv    *statemachine.KV

	mu       sync.Mutex
	running  bool
	stopped  bool
	applied  uint64               // commit index: highest finalized round applied here
	appliedC chan struct{}        // closed + replaced whenever applied advances
	pending  map[ident]*Receipt   // admitted, awaiting finality
	resolved map[ident]uint64     // recently finalized identity → commit index
	order    []ident              // FIFO eviction order for resolved

	submitted  *obs.Counter
	acked      *obs.Counter
	rejected   *obs.CounterVec
	ackLatency *obs.Histogram
	readTotal  *obs.Counter
	readWait   *obs.Histogram
	backlog    *obs.Gauge
}

type ident struct{ client, seq uint64 }

// New builds a Gateway over one replica's queue and KV. The queue's
// MaxPending is set from MaxBacklog so admission control is enforced at
// the batching layer itself, not just at the HTTP edge.
func New(queue *statemachine.Queue, kv *statemachine.KV, o Options) *Gateway {
	backlog := o.MaxBacklog
	if backlog == 0 {
		backlog = DefaultMaxBacklog
	}
	if backlog > 0 {
		queue.MaxPending = backlog
	}
	g := &Gateway{
		queue:    queue,
		kv:       kv,
		appliedC: make(chan struct{}),
		pending:  make(map[ident]*Receipt),
		resolved: make(map[ident]uint64),
	}
	if r := o.Registry; r != nil {
		party := strconv.Itoa(o.Party)
		g.submitted = r.Counter("icc_gateway_submitted_total",
			"Commands admitted into the pending backlog.")
		g.acked = r.Counter("icc_gateway_acked_total",
			"Commands acknowledged at finality.")
		g.rejected = r.CounterVec("icc_gateway_rejected_total",
			"Commands rejected at admission, by reason.", "reason")
		g.ackLatency = r.Histogram("icc_gateway_commit_latency_seconds",
			"End-to-end submit-to-finalize latency.", nil)
		g.readTotal = r.Counter("icc_gateway_reads_total",
			"Read requests served from finalized local state.")
		g.readWait = r.Histogram("icc_gateway_read_wait_seconds",
			"Time reads spent waiting for the commit index to reach their token.", nil)
		g.backlog = r.GaugeVec("icc_gateway_backlog",
			"Admitted-but-unfinalized commands per party.", "party").With(party)
	}
	return g
}

// Start makes the gateway serve. Idempotent; a no-op after Stop.
func (g *Gateway) Start() {
	g.mu.Lock()
	if !g.stopped {
		g.running = true
	}
	g.mu.Unlock()
}

// Stop stops serving: in-flight receipts resolve with ErrNotRunning,
// blocked reads wake and fail, later submits are refused. Idempotent.
func (g *Gateway) Stop() {
	g.mu.Lock()
	if g.stopped {
		g.mu.Unlock()
		return
	}
	g.running = false
	g.stopped = true
	orphans := make([]*Receipt, 0, len(g.pending))
	for id, r := range g.pending {
		delete(g.pending, id)
		orphans = append(orphans, r)
	}
	// Wake read waiters so they observe running=false.
	close(g.appliedC)
	g.appliedC = make(chan struct{})
	g.mu.Unlock()
	for _, r := range orphans {
		r.resolve(0, ErrNotRunning)
	}
}

// Submit admits one command and returns its finality Receipt. It never
// blocks on consensus: a full backlog is ErrBacklogFull immediately
// (TrySubmit discipline), a duplicate of a pending or finalized command
// is ErrDuplicate, a stopped gateway is ErrNotRunning. The context only
// gates the call itself, not the command's lifetime.
func (g *Gateway) Submit(ctx context.Context, cmd statemachine.Command) (*Receipt, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if !g.running {
		g.rejected.With("not_running").Inc()
		return nil, ErrNotRunning
	}
	id := ident{cmd.Client, cmd.Seq}
	if _, dup := g.resolved[id]; dup || cmd.Seq <= g.kv.AppliedSeq(cmd.Client) {
		g.rejected.With("duplicate").Inc()
		return nil, ErrDuplicate
	}
	if err := g.queue.TrySubmit(cmd); err != nil {
		switch {
		case errors.Is(err, statemachine.ErrBacklogFull):
			g.rejected.With("backlog_full").Inc()
			return nil, ErrBacklogFull
		case errors.Is(err, statemachine.ErrDuplicate):
			g.rejected.With("duplicate").Inc()
			return nil, ErrDuplicate
		case errors.Is(err, statemachine.ErrTooLarge):
			g.rejected.With("too_large").Inc()
			return nil, ErrTooLarge
		default:
			g.rejected.With("other").Inc()
			return nil, err
		}
	}
	r := &Receipt{
		Client:    cmd.Client,
		Seq:       cmd.Seq,
		submitted: time.Now(),
		done:      make(chan struct{}),
	}
	g.pending[id] = r
	g.submitted.Inc()
	g.backlog.Set(float64(g.queue.Len()))
	return r, nil
}

// ObserveCommit ingests one finalized block applied by this replica:
// it advances the commit index to the block's round and resolves the
// receipts of every command the payload carried. The caller must have
// applied the payload to the KV first, so a reader released by the new
// commit index observes the write.
func (g *Gateway) ObserveCommit(round uint64, payload []byte) {
	cmds, err := statemachine.DecodePayload(payload)
	if err != nil {
		cmds = nil // the round still finalized; advance the watermark
	}
	g.mu.Lock()
	if g.stopped {
		g.mu.Unlock()
		return
	}
	if round > g.applied {
		g.applied = round
		close(g.appliedC)
		g.appliedC = make(chan struct{})
	}
	var acked []*Receipt
	for _, c := range cmds {
		id := ident{c.Client, c.Seq}
		g.remember(id, round)
		if r, ok := g.pending[id]; ok {
			delete(g.pending, id)
			acked = append(acked, r)
		}
	}
	g.backlog.Set(float64(g.queue.Len()))
	g.mu.Unlock()
	now := time.Now()
	for _, r := range acked {
		g.acked.Inc()
		g.ackLatency.Observe(now.Sub(r.submitted).Seconds())
		r.resolve(round, nil)
	}
}

// remember records a finalized identity in the bounded resolved ring.
// Caller holds g.mu.
func (g *Gateway) remember(id ident, round uint64) {
	if _, ok := g.resolved[id]; ok {
		return
	}
	g.resolved[id] = round
	g.order = append(g.order, id)
	for len(g.order) > resolvedCap {
		delete(g.resolved, g.order[0])
		g.order = g.order[1:]
	}
}

// AppliedIndex returns this replica's commit index: the highest
// finalized round applied to its state.
func (g *Gateway) AppliedIndex() uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.applied
}

// Backlog returns the admitted-but-unfinalized command count.
func (g *Gateway) Backlog() int { return g.queue.Len() }

// ReadResult is a read served from finalized local state.
type ReadResult struct {
	Value []byte
	Found bool
	// Index is the replica's commit index at read time (≥ the request
	// token) — usable as the token for a subsequent monotonic read.
	Index uint64
}

// Read serves key from this replica's finalized state, gated by a
// commit-index token: it waits until the replica has applied round ≥
// token (read-your-writes when the token came from a write Receipt),
// then reads locally. A zero token reads the current state immediately.
func (g *Gateway) Read(ctx context.Context, key string, token uint64) (ReadResult, error) {
	start := time.Now()
	for {
		g.mu.Lock()
		if !g.running {
			g.mu.Unlock()
			return ReadResult{}, ErrNotRunning
		}
		applied := g.applied
		wake := g.appliedC
		g.mu.Unlock()
		if applied >= token {
			g.readTotal.Inc()
			g.readWait.Observe(time.Since(start).Seconds())
			v, found := g.kv.Get(key)
			return ReadResult{Value: v, Found: found, Index: applied}, nil
		}
		select {
		case <-ctx.Done():
			return ReadResult{}, ctx.Err()
		case <-wake:
		}
	}
}

// Lookup finds the state of a previously submitted identity: its
// pending Receipt, or — if it already finalized recently — the commit
// index it resolved at. ok is false when the gateway knows nothing
// about the identity.
func (g *Gateway) Lookup(client, seq uint64) (r *Receipt, index uint64, ok bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	id := ident{client, seq}
	if r, ok := g.pending[id]; ok {
		return r, 0, true
	}
	if idx, ok := g.resolved[id]; ok {
		return nil, idx, true
	}
	return nil, 0, false
}

// Receipt is the completion future of one submitted command. It
// resolves exactly when the command is finalized and applied on the
// submitting replica — acknowledgement never precedes finality.
type Receipt struct {
	Client uint64
	Seq    uint64

	submitted time.Time
	done      chan struct{}

	once  sync.Once
	index uint64
	err   error
}

// Ack is the resolved outcome of a Receipt.
type Ack struct {
	// CommitIndex is the finalized round that applied the command — the
	// read-your-writes token: pass it to Read on any replica to observe
	// this write.
	CommitIndex uint64
	// Latency is submit-to-finalize wall time as seen by this replica.
	Latency time.Duration
}

func (r *Receipt) resolve(index uint64, err error) {
	r.once.Do(func() {
		r.index = index
		r.err = err
		close(r.done)
	})
}

// Done returns a channel closed when the receipt resolves (finality or
// gateway shutdown). Check Ack after it closes.
func (r *Receipt) Done() <-chan struct{} { return r.done }

// Wait blocks until the command finalizes, the gateway stops
// (ErrNotRunning), or the context expires.
func (r *Receipt) Wait(ctx context.Context) (Ack, error) {
	select {
	case <-r.done:
		if r.err != nil {
			return Ack{}, r.err
		}
		return Ack{CommitIndex: r.index, Latency: time.Since(r.submitted)}, nil
	case <-ctx.Done():
		return Ack{}, ctx.Err()
	}
}
