package simnet

import (
	"math/rand"
	"time"

	"icc/internal/types"
)

// DelayModel decides how long a message takes from one party to another,
// and whether it is delivered at all. Implementations must be
// deterministic given the rng stream.
//
// Note on faithfulness: the paper assumes every message between honest
// parties is eventually delivered (§1). Models that drop messages should
// therefore only be used for corrupt senders or together with a
// retransmitting layer such as gossip.
type DelayModel interface {
	Sample(rng *rand.Rand, from, to types.PartyID, size int) (delay time.Duration, deliver bool)
}

// Fixed delivers every message after exactly D.
type Fixed struct {
	D time.Duration
}

// Sample implements DelayModel.
func (f Fixed) Sample(_ *rand.Rand, _, _ types.PartyID, _ int) (time.Duration, bool) {
	return f.D, true
}

// Uniform delivers after a delay uniform in [Min, Max].
type Uniform struct {
	Min, Max time.Duration
}

// Sample implements DelayModel.
func (u Uniform) Sample(rng *rand.Rand, _, _ types.PartyID, _ int) (time.Duration, bool) {
	if u.Max <= u.Min {
		return u.Min, true
	}
	return u.Min + time.Duration(rng.Int63n(int64(u.Max-u.Min))), true
}

// LinkMatrix assigns each ordered pair of parties a base one-way delay
// plus uniform jitter — the shape of the paper's deployment measurements
// (§5: ping RTTs between 6 ms and 110 ms across data centers).
type LinkMatrix struct {
	Base   [][]time.Duration
	Jitter time.Duration
}

// NewWANMatrix builds a LinkMatrix for n parties with symmetric one-way
// base delays drawn uniformly from [minRTT/2, maxRTT/2].
func NewWANMatrix(n int, minRTT, maxRTT time.Duration, seed int64) *LinkMatrix {
	rng := rand.New(rand.NewSource(seed))
	base := make([][]time.Duration, n)
	for i := range base {
		base[i] = make([]time.Duration, n)
	}
	lo, hi := minRTT/2, maxRTT/2
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := lo
			if hi > lo {
				d += time.Duration(rng.Int63n(int64(hi - lo)))
			}
			base[i][j] = d
			base[j][i] = d
		}
	}
	return &LinkMatrix{Base: base, Jitter: minRTT / 4}
}

// MaxOneWay returns the largest base one-way delay plus jitter — a sound
// Δbnd for the matrix.
func (l *LinkMatrix) MaxOneWay() time.Duration {
	var maxDelay time.Duration
	for i := range l.Base {
		for j := range l.Base[i] {
			if l.Base[i][j] > maxDelay {
				maxDelay = l.Base[i][j]
			}
		}
	}
	return maxDelay + l.Jitter
}

// Sample implements DelayModel.
func (l *LinkMatrix) Sample(rng *rand.Rand, from, to types.PartyID, _ int) (time.Duration, bool) {
	d := l.Base[from][to]
	if l.Jitter > 0 {
		d += time.Duration(rng.Int63n(int64(l.Jitter)))
	}
	return d, true
}

// Bandwidth wraps a model and adds size-proportional transmission time,
// modelling a per-party uplink. It makes large-block dissemination cost
// visible (the leader-bottleneck effect of [35] the paper discusses).
type Bandwidth struct {
	Inner       DelayModel
	BytesPerSec int64
}

// Sample implements DelayModel.
func (b Bandwidth) Sample(rng *rand.Rand, from, to types.PartyID, size int) (time.Duration, bool) {
	d, ok := b.Inner.Sample(rng, from, to, size)
	if !ok {
		return 0, false
	}
	if b.BytesPerSec > 0 {
		d += time.Duration(int64(time.Second) * int64(size) / b.BytesPerSec)
	}
	return d, true
}

// Window is a half-open interval of simulated time.
type Window struct {
	From, To time.Duration
}

// AsyncWindows inflates delays by Extra during the given windows,
// modelling periods of network asynchrony in the partial-synchrony model
// (§1: "the network is synchronous for relatively short intervals of
// time every now and then").
//
// The window test uses the send time, which the host passes via
// SetNow before sampling.
type AsyncWindows struct {
	Inner   DelayModel
	Windows []Window
	Extra   time.Duration

	now time.Duration
}

// SetNow informs the model of the current simulation time. The simulator
// calls this before each Sample.
func (a *AsyncWindows) SetNow(t time.Duration) { a.now = t }

// Sample implements DelayModel.
func (a *AsyncWindows) Sample(rng *rand.Rand, from, to types.PartyID, size int) (time.Duration, bool) {
	d, ok := a.Inner.Sample(rng, from, to, size)
	if !ok {
		return 0, false
	}
	for _, w := range a.Windows {
		if a.now >= w.From && a.now < w.To {
			// Deliver after the window ends plus the residual delay, so
			// messages sent during asynchrony are delayed, not lost.
			d += a.Extra + (w.To - a.now)
			break
		}
	}
	return d, true
}

// Partition holds cross-group traffic during the given windows: a
// message sent between parties in different groups while a window is
// open is delivered only after the window closes (plus its residual
// network delay), mirroring AsyncWindows but keyed on group membership
// rather than applying to all links. Messages within a group, and all
// messages outside the windows, are unaffected. Nothing is lost — the
// paper's eventual-delivery assumption (§1) resumes at heal time, which
// is exactly the "network partitions, then heals" robustness scenario
// (Table 1 scenario 3's message-adversary generalisation).
//
// The window test uses the send time, which the host passes via SetNow
// before sampling.
type Partition struct {
	Inner   DelayModel
	Windows []Window
	// Group assigns each party to a partition group; unlisted parties
	// are group 0.
	Group map[types.PartyID]int

	now time.Duration
}

// SetNow informs the model of the current simulation time.
func (p *Partition) SetNow(t time.Duration) { p.now = t }

// Sample implements DelayModel.
func (p *Partition) Sample(rng *rand.Rand, from, to types.PartyID, size int) (time.Duration, bool) {
	d, ok := p.Inner.Sample(rng, from, to, size)
	if !ok {
		return 0, false
	}
	if p.Group[from] != p.Group[to] {
		for _, w := range p.Windows {
			if p.now >= w.From && p.now < w.To {
				// Held at the cut until the partition heals, then the
				// residual delay applies.
				d += w.To - p.now
				break
			}
		}
	}
	return d, true
}

// nowAware is implemented by models that need the current time.
type nowAware interface {
	SetNow(time.Duration)
}
