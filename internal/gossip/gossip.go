// Package gossip implements the peer-to-peer gossip sub-layer that
// Protocol ICC1 is designed to integrate with (paper §1, [17]). Each
// party talks only to a bounded set of neighbours; artifacts spread by
// flooding with deduplication, and large artifacts (blocks) use a lazy
// advert → request → deliver pull so that the proposer's egress is
// bounded by its fanout rather than by n — the leader-bottleneck relief
// the paper attributes to the gossip layer.
//
// The wrapper turns an ICC engine's logical broadcasts into gossip
// traffic and reassembles incoming gossip into ordinary message
// deliveries for the engine, so the consensus logic is unchanged
// (the paper: "the logic of the protocol can be easily understood
// independent of this sub-layer").
package gossip

import (
	"math/rand"
	"time"

	"icc/internal/engine"
	"icc/internal/types"
)

// Config tunes one party's gossip wrapper.
type Config struct {
	Self types.PartyID
	N    int
	// Fanout bounds the neighbourhood size. The topology is a ring plus
	// seeded random chords, so the honest overlay stays connected.
	Fanout int
	// Seed makes the topology deterministic across parties.
	Seed int64
	// EagerThreshold is the encoded-size boundary between eager push
	// (small artifacts: shares, notarizations) and lazy advert/pull
	// (blocks). Default 1024 bytes.
	EagerThreshold int
	// MaxStore caps the artifact store (FIFO eviction). Default 65536.
	MaxStore int
}

// Engine is the gossip wrapper.
type Engine struct {
	cfg   Config
	inner engine.Engine
	peers []types.PartyID

	seen  map[types.Ref]struct{}
	store map[types.Ref]types.Message
	order []types.Ref // FIFO for eviction
	// requested tracks which peers we already asked for a pending ref,
	// so a corrupt non-answering peer cannot stall us: every further
	// advertiser gets asked too.
	requested map[types.Ref]map[types.PartyID]struct{}

	out []engine.Output
}

// Wrap builds the ICC1 dissemination wrapper around an engine.
func Wrap(cfg Config, inner engine.Engine) *Engine {
	if cfg.EagerThreshold == 0 {
		cfg.EagerThreshold = 1024
	}
	if cfg.MaxStore == 0 {
		cfg.MaxStore = 65536
	}
	if cfg.Fanout < 2 {
		cfg.Fanout = 2
	}
	if cfg.Fanout > cfg.N-1 {
		cfg.Fanout = cfg.N - 1
	}
	return &Engine{
		cfg:       cfg,
		inner:     inner,
		peers:     Topology(cfg.N, cfg.Fanout, cfg.Seed)[cfg.Self],
		seen:      make(map[types.Ref]struct{}),
		store:     make(map[types.Ref]types.Message),
		requested: make(map[types.Ref]map[types.PartyID]struct{}),
	}
}

// Topology builds the deterministic overlay: every party's neighbour
// list in a ring-plus-random-chords graph. Symmetric: j ∈ peers(i) iff
// i ∈ peers(j).
func Topology(n, fanout int, seed int64) [][]types.PartyID {
	adj := make([]map[types.PartyID]struct{}, n)
	for i := range adj {
		adj[i] = make(map[types.PartyID]struct{})
	}
	link := func(a, b int) {
		if a == b {
			return
		}
		adj[a][types.PartyID(b)] = struct{}{}
		adj[b][types.PartyID(a)] = struct{}{}
	}
	// Ring for guaranteed connectivity.
	for i := 0; i < n; i++ {
		link(i, (i+1)%n)
	}
	// Random chords until everyone reaches the fanout (or the graph is
	// complete).
	rng := rand.New(rand.NewSource(seed ^ 0x6f55a9))
	for i := 0; i < n; i++ {
		guard := 0
		for len(adj[i]) < fanout && guard < 10*n {
			link(i, rng.Intn(n))
			guard++
		}
	}
	out := make([][]types.PartyID, n)
	for i := range adj {
		peers := make([]types.PartyID, 0, len(adj[i]))
		for p := 0; p < n; p++ {
			if _, ok := adj[i][types.PartyID(p)]; ok {
				peers = append(peers, types.PartyID(p))
			}
		}
		out[i] = peers
	}
	return out
}

// Peers returns this party's neighbour list.
func (g *Engine) Peers() []types.PartyID { return g.peers }

// ID implements engine.Engine.
func (g *Engine) ID() types.PartyID { return g.inner.ID() }

// CurrentRound implements engine.Engine.
func (g *Engine) CurrentRound() types.Round { return g.inner.CurrentRound() }

// NextWake implements engine.Engine.
func (g *Engine) NextWake(now time.Duration) (time.Duration, bool) { return g.inner.NextWake(now) }

// Init implements engine.Engine.
func (g *Engine) Init(now time.Duration) []engine.Output {
	g.disseminate(g.inner.Init(now), -1)
	return g.drain()
}

// Tick implements engine.Engine.
func (g *Engine) Tick(now time.Duration) []engine.Output {
	g.disseminate(g.inner.Tick(now), -1)
	return g.drain()
}

// HandleMessage implements engine.Engine: gossip control traffic is
// consumed here; artifacts are deduplicated, delivered to the inner
// engine, and relayed onward.
func (g *Engine) HandleMessage(from types.PartyID, m types.Message, now time.Duration) []engine.Output {
	switch v := m.(type) {
	case *types.Advert:
		g.handleAdvert(from, v)
	case *types.Request:
		g.handleRequest(from, v)
	default:
		g.handleArtifact(from, m, now)
	}
	return g.drain()
}

func (g *Engine) drain() []engine.Output {
	out := g.out
	g.out = nil
	return out
}

func (g *Engine) send(to types.PartyID, m types.Message) {
	g.out = append(g.out, engine.Unicast(to, m))
}

// disseminate converts the inner engine's outputs into gossip traffic.
// skip is a peer to exclude (the artifact's source), or -1.
func (g *Engine) disseminate(outs []engine.Output, skip types.PartyID) {
	for _, o := range outs {
		if !o.Broadcast {
			// Unicasts (from Byzantine wrappers) pass through unchanged.
			g.out = append(g.out, o)
			continue
		}
		// Bundles are split so each artifact gossips under its own ref
		// (a bundle's block should go lazy while its signatures go
		// eager).
		if b, ok := o.Msg.(*types.Bundle); ok {
			for _, sub := range b.Messages {
				g.gossipArtifact(sub, skip)
			}
			continue
		}
		g.gossipArtifact(o.Msg, skip)
	}
}

// gossipArtifact spreads one artifact we now hold.
func (g *Engine) gossipArtifact(m types.Message, skip types.PartyID) {
	ref := types.RefOf(m)
	if _, dup := g.seen[ref]; dup {
		return
	}
	g.seen[ref] = struct{}{}
	g.put(ref, m)
	size := len(types.Marshal(m))
	if size <= g.cfg.EagerThreshold {
		for _, p := range g.peers {
			if p != skip {
				g.send(p, m)
			}
		}
		return
	}
	adv := &types.Advert{Refs: []types.Ref{ref}}
	for _, p := range g.peers {
		if p != skip {
			g.send(p, adv)
		}
	}
}

// put stores an artifact for serving, with FIFO eviction.
func (g *Engine) put(ref types.Ref, m types.Message) {
	if _, ok := g.store[ref]; ok {
		return
	}
	g.store[ref] = m
	g.order = append(g.order, ref)
	for len(g.order) > g.cfg.MaxStore {
		old := g.order[0]
		g.order = g.order[1:]
		delete(g.store, old)
	}
}

func (g *Engine) handleAdvert(from types.PartyID, adv *types.Advert) {
	var want []types.Ref
	for _, ref := range adv.Refs {
		if _, have := g.store[ref]; have {
			continue
		}
		asked := g.requested[ref]
		if asked == nil {
			asked = make(map[types.PartyID]struct{})
			g.requested[ref] = asked
		}
		if _, dup := asked[from]; dup {
			continue
		}
		asked[from] = struct{}{}
		want = append(want, ref)
	}
	if len(want) > 0 {
		g.send(from, &types.Request{Refs: want})
	}
}

func (g *Engine) handleRequest(from types.PartyID, req *types.Request) {
	for _, ref := range req.Refs {
		if m, ok := g.store[ref]; ok {
			g.send(from, m)
		}
	}
}

// handleArtifact processes a received artifact: dedup, deliver to the
// inner engine, relay to peers.
func (g *Engine) handleArtifact(from types.PartyID, m types.Message, now time.Duration) {
	ref := types.RefOf(m)
	if _, dup := g.seen[ref]; dup {
		return
	}
	g.seen[ref] = struct{}{}
	g.put(ref, m)
	delete(g.requested, ref)
	// Relay onward before delivering (delivery may produce more output).
	size := len(types.Marshal(m))
	if size <= g.cfg.EagerThreshold {
		for _, p := range g.peers {
			if p != from {
				g.send(p, m)
			}
		}
	} else {
		adv := &types.Advert{Refs: []types.Ref{ref}}
		for _, p := range g.peers {
			if p != from {
				g.send(p, adv)
			}
		}
	}
	// The inner engine's reactions are new artifacts of our own: gossip
	// them to all peers (including the artifact's source).
	g.disseminate(g.inner.HandleMessage(from, m, now), -1)
}

var _ engine.Engine = (*Engine)(nil)
