package checkpoint

import (
	"crypto/rand"
	"testing"

	"icc/internal/crypto/aggsig"
	"icc/internal/crypto/hash"
	"icc/internal/crypto/keys"
	"icc/internal/crypto/multisig"
	"icc/internal/types"
)

// buildCertified fabricates a fully certified checkpoint for an
// n-party cluster: a notarized boundary block, a state snapshot, and a
// t+1 checkpoint certificate.
func buildCertified(t *testing.T, n int) (*keys.Public, []keys.Private, *Checkpoint) {
	t.Helper()
	return buildCertifiedScheme(t, n, aggsig.SchemeMultisig)
}

func buildCertifiedScheme(t *testing.T, n int, scheme aggsig.SchemeID) (*keys.Public, []keys.Private, *Checkpoint) {
	t.Helper()
	pub, privs, err := keys.DealScheme(rand.Reader, n, scheme)
	if err != nil {
		t.Fatal(err)
	}
	block := &types.Block{
		Round:      10,
		Proposer:   2,
		ParentHash: hash.SumUint64(hash.DomainBlock, 9),
		Payload:    []byte("boundary payload"),
	}
	bh := block.Hash()
	msg := types.SigningBytes(block.Round, block.Proposer, bh)
	var nzShares []*multisig.Share
	for i := 0; i < types.NotaryQuorum(n); i++ {
		nzShares = append(nzShares, privs[i].Notary.Sign(types.DomainNotarization, msg))
	}
	nzAgg, err := pub.Notary.Combine(types.DomainNotarization, msg, nzShares)
	if err != nil {
		t.Fatal(err)
	}
	var fzShares []*multisig.Share
	for i := 0; i < types.NotaryQuorum(n); i++ {
		fzShares = append(fzShares, privs[i].Final.Sign(types.DomainFinalization, msg))
	}
	fzAgg, err := pub.Final.Combine(types.DomainFinalization, msg, fzShares)
	if err != nil {
		t.Fatal(err)
	}
	state := []byte("replicated state after block 10")
	c := &Checkpoint{
		Round:        block.Round,
		BlockHash:    bh,
		StateHash:    StateDigest(state),
		BeaconDigest: hash.SumUint64(hash.DomainBeacon, 10),
		Block:        block,
		Notarization: &types.Notarization{Round: block.Round, Proposer: block.Proposer, BlockHash: bh, Agg: nzAgg.Encode()},
		Finalization: &types.Finalization{Round: block.Round, Proposer: block.Proposer, BlockHash: bh, Agg: fzAgg.Encode()},
		State:        state,
	}
	cMsg := c.SigningBytes()
	var cpShares []*multisig.Share
	for i := 0; i < types.CheckpointQuorum(n); i++ {
		cpShares = append(cpShares, privs[i].Final.Sign(types.DomainCheckpoint, cMsg))
	}
	cpAgg, err := PublicInfo(pub).Combine(types.DomainCheckpoint, cMsg, cpShares)
	if err != nil {
		t.Fatal(err)
	}
	c.Agg = cpAgg.Encode()
	return pub, privs, c
}

func TestEncodeDecodeVerify(t *testing.T) {
	pub, _, c := buildCertified(t, 4)
	if err := Verify(pub, c); err != nil {
		t.Fatalf("valid checkpoint rejected: %v", err)
	}
	raw := c.Encode()
	c2, err := Decode(raw)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if err := Verify(pub, c2); err != nil {
		t.Fatalf("decoded checkpoint rejected: %v", err)
	}
	if c2.Round != c.Round || c2.BlockHash != c.BlockHash || c2.StateHash != c.StateHash ||
		c2.BeaconDigest != c.BeaconDigest || string(c2.State) != string(c.State) {
		t.Fatal("round-trip altered fields")
	}
	if c2.Finalization == nil {
		t.Fatal("finalization lost in round trip")
	}
}

func TestEncodeDecodeVerifyBLS(t *testing.T) {
	// Checkpoint certificates under the BLS scheme: the t+1 sub-quorum
	// view (WithQuorum) must deal, combine, wire-encode, and verify the
	// same way the default multisig instance does. One full Verify here
	// costs three pairing checks — kept to a single test case.
	pub, _, c := buildCertifiedScheme(t, 4, aggsig.SchemeBLS)
	if err := Verify(pub, c); err != nil {
		t.Fatalf("valid BLS checkpoint rejected: %v", err)
	}
	c2, err := Decode(c.Encode())
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if err := Verify(pub, c2); err != nil {
		t.Fatalf("decoded BLS checkpoint rejected: %v", err)
	}
	// A multisig-framed aggregate in a BLS cluster must be rejected as a
	// bad aggregate, not crash the decoder.
	c2.Agg = append([]byte{byte(aggsig.SchemeMultisig)}, c2.Agg[1:]...)
	if err := Verify(pub, c2); err == nil {
		t.Fatal("cross-scheme checkpoint certificate accepted")
	}
}

func TestVerifyWithoutFinalization(t *testing.T) {
	pub, _, c := buildCertified(t, 4)
	c.Finalization = nil
	if err := Verify(pub, c); err != nil {
		t.Fatalf("checkpoint without finalization aggregate rejected: %v", err)
	}
	c2, err := Decode(c.Encode())
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if c2.Finalization != nil {
		t.Fatal("nil finalization did not round-trip")
	}
}

func TestVerifyRejectsTampering(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(c *Checkpoint)
	}{
		{"state", func(c *Checkpoint) { c.State = append([]byte{}, "forged"...) }},
		{"state-hash-pair", func(c *Checkpoint) {
			c.State = []byte("forged")
			c.StateHash = StateDigest(c.State) // hash matches, certificate doesn't
		}},
		{"round", func(c *Checkpoint) { c.Round++ }},
		{"beacon", func(c *Checkpoint) { c.BeaconDigest[0] ^= 1 }},
		{"block", func(c *Checkpoint) { c.Block.Payload = []byte("other") }},
		{"certificate", func(c *Checkpoint) { c.Agg[len(c.Agg)-1] ^= 1 }},
		{"cert-truncated", func(c *Checkpoint) { c.Agg = c.Agg[:3] }},
		{"notarization", func(c *Checkpoint) { c.Notarization.Agg[4] ^= 1 }},
		{"notarization-round", func(c *Checkpoint) { c.Notarization.Round++ }},
		{"finalization", func(c *Checkpoint) { c.Finalization.Agg[4] ^= 1 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pub, _, c := buildCertified(t, 4)
			tc.mutate(c)
			if err := Verify(pub, c); err == nil {
				t.Fatalf("tampered checkpoint (%s) verified", tc.name)
			}
		})
	}
}

func TestVerifyRejectsBelowQuorumCert(t *testing.T) {
	pub, privs, c := buildCertified(t, 4)
	// Rebuild the certificate with only 1 share where t+1 = 2 are needed.
	share := privs[0].Final.Sign(types.DomainCheckpoint, c.SigningBytes())
	agg := &multisig.Aggregate{Signers: []int{0}, Sigs: [][]byte{share.Signature}}
	c.Agg = agg.Encode()
	if err := Verify(pub, c); err == nil {
		t.Fatal("sub-quorum certificate verified")
	}
}

func TestStoreSaveLatestRetention(t *testing.T) {
	_, _, c := buildCertified(t, 4)
	dir := t.TempDir()
	s, err := OpenStore(dir, StoreOptions{Retain: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got, err := s.Latest(); err != nil || got != nil {
		t.Fatalf("empty store Latest = (%v, %v)", got, err)
	}
	if _, _, ok := s.LatestEncoded(); ok {
		t.Fatal("empty store claims an encoded checkpoint")
	}
	// Save rounds 10, 20, 30 (same certified content, bumped rounds would
	// break the cert — so re-save the same checkpoint at fake rounds by
	// copying and shifting only what the store looks at is not possible;
	// instead save three genuinely distinct-round variants by rebuilding).
	rounds := []types.Round{c.Round}
	if err := s.Save(c); err != nil {
		t.Fatalf("save: %v", err)
	}
	for i := 0; i < 2; i++ {
		next := structuralClone(t, c.Round+types.Round(10*(i+1)))
		if err := s.Save(next); err != nil {
			t.Fatalf("save %d: %v", next.Round, err)
		}
		rounds = append(rounds, next.Round)
	}
	if got := s.LatestRound(); got != rounds[len(rounds)-1] {
		t.Fatalf("LatestRound = %d, want %d", got, rounds[len(rounds)-1])
	}
	if got := len(s.files()); got != 2 {
		t.Fatalf("retention kept %d files, want 2", got)
	}
	// Stale saves are no-ops.
	if err := s.Save(c); err != nil {
		t.Fatalf("stale save: %v", err)
	}
	if got := s.LatestRound(); got != rounds[len(rounds)-1] {
		t.Fatalf("stale save moved LatestRound to %d", got)
	}
	// Reopen: latest survives and decodes.
	s2, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := s2.Latest()
	if err != nil || got == nil {
		t.Fatalf("reopened Latest = (%v, %v)", got, err)
	}
	if got.Round != rounds[len(rounds)-1] {
		t.Fatalf("reopened round %d, want %d", got.Round, rounds[len(rounds)-1])
	}
}

// structuralClone fabricates a structurally complete checkpoint at the
// given round. Its certificate does not verify (the store never
// verifies; that is the engine's job on load and receipt), which is
// exactly what the retention test needs.
func structuralClone(t *testing.T, round types.Round) *Checkpoint {
	t.Helper()
	_, _, c := buildCertified(t, 4)
	c.Round = round
	c.Block.Round = round
	c.BlockHash = c.Block.Hash()
	return c
}

func TestNilStoreIsNoOp(t *testing.T) {
	var s *Store
	if err := s.Save(&Checkpoint{}); err != nil {
		t.Fatal(err)
	}
	if c, err := s.Latest(); c != nil || err != nil {
		t.Fatal("nil store returned a checkpoint")
	}
	if _, _, ok := s.LatestEncoded(); ok {
		t.Fatal("nil store returned an encoding")
	}
	if s.LatestRound() != 0 {
		t.Fatal("nil store round")
	}
	s.Close()
}
