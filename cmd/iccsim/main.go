// Command iccsim runs one configurable ICC cluster simulation and
// prints a summary: protocol variant, cluster size, delay model,
// Byzantine behaviours, and duration are all flags. It is the
// exploratory companion to cmd/iccbench's fixed experiment suite.
//
// Examples:
//
//	iccsim -n 13 -mode icc1 -delta 25ms -duration 60s
//	iccsim -n 7 -crash 1 -equivocate 1 -seed 7
//	iccsim -n 13 -wan -payload 1048576 -mode icc2
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"icc/internal/core"
	"icc/internal/harness"
	"icc/internal/pool"
	"icc/internal/simnet"
	"icc/internal/types"
)

func main() {
	var (
		n          = flag.Int("n", 7, "number of parties")
		mode       = flag.String("mode", "icc0", "protocol variant: icc0, icc1, icc2")
		delta      = flag.Duration("delta", 10*time.Millisecond, "network delay δ (fixed model)")
		wan        = flag.Bool("wan", false, "use the WAN link matrix (6-110ms RTTs) instead of fixed delay")
		bound      = flag.Duration("bound", 100*time.Millisecond, "partial-synchrony bound Δbnd")
		epsilon    = flag.Duration("epsilon", 0, "ε governor of eq. (2)")
		duration   = flag.Duration("duration", 30*time.Second, "simulated duration")
		seed       = flag.Int64("seed", 1, "simulation seed")
		payload    = flag.Int("payload", 0, "block payload size in bytes")
		crash      = flag.Int("crash", 0, "parties crashed from birth")
		silent     = flag.Int("silent", 0, "parties that never propose")
		equivocate = flag.Int("equivocate", 0, "parties that propose conflicting blocks")
		adaptive   = flag.Bool("adaptive", false, "enable the adaptive-Δbnd variant")
		realCrypto = flag.Bool("realcrypto", false, "use full threshold cryptography (slower)")
	)
	flag.Parse()

	var m harness.Mode
	switch *mode {
	case "icc0":
		m = harness.ICC0
	case "icc1":
		m = harness.ICC1
	case "icc2":
		m = harness.ICC2
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *mode)
		os.Exit(1)
	}
	behaviors := make(map[types.PartyID]harness.Behavior)
	next := 0
	assign := func(count int, b harness.Behavior) {
		for i := 0; i < count && next < *n; i++ {
			behaviors[types.PartyID(next)] = b
			next++
		}
	}
	assign(*crash, harness.Crash)
	assign(*silent, harness.SilentLeader)
	assign(*equivocate, harness.Equivocator)
	if tf := types.MaxFaults(*n); next > tf {
		fmt.Fprintf(os.Stderr, "warning: %d corrupt parties exceeds t=%d (< n/3); expect trouble\n", next, tf)
	}

	verifyPolicy := pool.VerifyFull
	if !*realCrypto {
		verifyPolicy = pool.VerifySharesOnly
	}
	opts := harness.Options{
		N:          *n,
		Seed:       *seed,
		DeltaBound: *bound,
		Epsilon:    *epsilon,
		Mode:       m,
		Behaviors:  behaviors,
		Adaptive:   *adaptive,
		SimBeacon:  !*realCrypto,
		Verify:     verifyPolicy,
		PruneDepth: core.DefaultPruneDepth,
	}
	if *wan {
		mat := simnet.NewWANMatrix(*n, 6*time.Millisecond, 110*time.Millisecond, *seed)
		opts.Delay = mat
		if !flagWasSet("bound") {
			opts.DeltaBound = mat.MaxOneWay()
		}
	} else {
		opts.Delay = simnet.Fixed{D: *delta}
	}
	if *payload > 0 {
		opts.Payload = core.SizedPayload{Size: *payload}
	}

	c, err := harness.New(opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "building cluster: %v\n", err)
		os.Exit(1)
	}
	start := time.Now()
	c.Start()
	c.Net.Run(*duration)
	wall := time.Since(start)

	if err := c.CheckSafety(); err != nil {
		fmt.Fprintf(os.Stderr, "SAFETY VIOLATION: %v\n", err)
		os.Exit(1)
	}
	s := c.Rec.Summarize()
	fmt.Printf("protocol          %s, n=%d (t=%d), %d corrupt\n", m, *n, types.MaxFaults(*n), next)
	fmt.Printf("simulated         %v (wall clock %v)\n", *duration, wall.Round(time.Millisecond))
	fmt.Printf("committed blocks  %d (%.2f blocks/s)\n", s.CommittedBlocks, float64(s.CommittedBlocks)/duration.Seconds())
	fmt.Printf("committed bytes   %d\n", s.CommittedBytes)
	fmt.Printf("round time        mean %v (reciprocal throughput)\n", s.MeanRoundTime.Round(time.Microsecond))
	fmt.Printf("commit latency    mean %v, p50 %v, p99 %v\n",
		s.MeanLatency.Round(time.Microsecond), s.P50Latency.Round(time.Microsecond), s.P99Latency.Round(time.Microsecond))
	fmt.Printf("messages          total %d, per-round mean %.0f (n²=%d), worst round %d\n",
		s.TotalMsgs, s.MeanRoundMsgs, (*n)*(*n), s.MaxRoundMsgs)
	fmt.Printf("traffic           total %d bytes, busiest party %d bytes\n", s.TotalBytes, s.MaxPartyBytes)
	fmt.Println("safety            OK (all committed prefixes consistent)")
}

// flagWasSet reports whether a flag was explicitly provided.
func flagWasSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}
