package bls

import (
	"math/big"
	"testing"
)

func TestFieldTowerBasics(t *testing.T) {
	// Fp2: u² = −1.
	u := fp2FromInts(0, 1)
	if !u.mul(u).equal(fp2FromInts(-1, 0)) {
		t.Fatal("u² != −1")
	}
	a := fp2FromInts(3, 7)
	if !a.mul(a.inv()).equal(fp2One()) {
		t.Fatal("fp2 inverse")
	}
	// Fp6: v³ = ξ.
	v := fp6{fp2Zero(), fp2One(), fp2Zero()}
	v3 := v.mul(v).mul(v)
	if !v3.equal(fp6{xi(), fp2Zero(), fp2Zero()}) {
		t.Fatal("v³ != ξ")
	}
	b := fp6{fp2FromInts(1, 2), fp2FromInts(3, 4), fp2FromInts(5, 6)}
	if !b.mul(b.inv()).equal(fp6One()) {
		t.Fatal("fp6 inverse")
	}
	if !b.mulV().equal(b.mul(v)) {
		t.Fatal("mulV shortcut wrong")
	}
	// Fp12: w² = v.
	w := wPow(1)
	if !w.mul(w).equal(wPow(2)) {
		t.Fatal("w² mismatch")
	}
	if !w.mul(w).mul(w).equal(wPow(3)) {
		t.Fatal("w³ mismatch")
	}
	c := fp12{b, fp6{fp2FromInts(7, 8), fp2FromInts(9, 1), fp2FromInts(2, 3)}}
	if !c.mul(c.inv()).equal(fp12One()) {
		t.Fatal("fp12 inverse")
	}
}

func TestGeneratorsOnCurveAndOrder(t *testing.T) {
	g1 := G1Generator()
	if !g1.IsOnCurve() {
		t.Fatal("G1 generator off curve")
	}
	if !g1.Mul(R).IsInfinity() {
		t.Fatal("r·G1 != ∞")
	}
	g2 := G2Generator()
	if !g2.IsOnCurve() {
		t.Fatal("G2 generator off curve")
	}
	if !g2.Mul(R).IsInfinity() {
		t.Fatal("r·G2 != ∞")
	}
	// Small-multiple consistency.
	if !g1.Add(g1).Equal(g1.Mul(big.NewInt(2))) {
		t.Fatal("G1 doubling mismatch")
	}
	if !g2.Add(g2).Equal(g2.Mul(big.NewInt(2))) {
		t.Fatal("G2 doubling mismatch")
	}
}

func TestPairingBilinear(t *testing.T) {
	g1 := G1Generator()
	g2 := G2Generator()
	e := Pair(g1, g2)
	if e.equal(fp12One()) {
		t.Fatal("pairing degenerate: e(G1, G2) = 1")
	}
	// e(G1,G2)^r == 1 (image has order r).
	if !e.exp(R).equal(fp12One()) {
		t.Fatal("pairing image not of order r")
	}
	a := big.NewInt(7)
	b := big.NewInt(11)
	// e(aP, Q) == e(P,Q)^a
	left := Pair(g1.Mul(a), g2)
	if !left.equal(e.exp(a)) {
		t.Fatal("bilinearity in first argument failed")
	}
	// e(P, bQ) == e(P,Q)^b
	right := Pair(g1, g2.Mul(b))
	if !right.equal(e.exp(b)) {
		t.Fatal("bilinearity in second argument failed")
	}
	// e(aP, bQ) == e(bP, aQ)
	if !Pair(g1.Mul(a), g2.Mul(b)).equal(Pair(g1.Mul(b), g2.Mul(a))) {
		t.Fatal("cross bilinearity failed")
	}
}

func TestPairingIdentityArguments(t *testing.T) {
	if !Pair(G1Infinity(), G2Generator()).equal(fp12One()) {
		t.Fatal("e(∞, Q) != 1")
	}
	if !Pair(G1Generator(), G2Infinity()).equal(fp12One()) {
		t.Fatal("e(P, ∞) != 1")
	}
}

func TestHashToG1(t *testing.T) {
	p := HashToG1([]byte("message"))
	if !p.IsOnCurve() || p.IsInfinity() {
		t.Fatal("hash output invalid")
	}
	if !p.Mul(R).IsInfinity() {
		t.Fatal("hash output not in the order-r subgroup")
	}
	q := HashToG1([]byte("message"))
	if !p.Equal(q) {
		t.Fatal("hash not deterministic")
	}
	if HashToG1([]byte("other")).Equal(p) {
		t.Fatal("distinct messages collided")
	}
}

func BenchmarkPairing(b *testing.B) {
	g1 := G1Generator()
	g2 := G2Generator()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Pair(g1, g2)
	}
}
