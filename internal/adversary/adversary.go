// Package adversary provides Byzantine engine implementations for
// robustness experiments (paper §1 "Robust consensus", Table 1 scenario
// 3). Each adversary implements engine.Engine so it plugs into the same
// simulator as honest engines.
//
// The behaviours here follow the corruption taxonomy of §3.1: crash
// failures (Silent), consistent failures (SilentLeader, LazyVoter — not
// conspicuously incorrect), and full Byzantine behaviour (Equivocator).
package adversary

import (
	"time"

	"icc/internal/core"
	"icc/internal/crypto/hash"
	"icc/internal/crypto/keys"
	"icc/internal/crypto/sig"
	"icc/internal/engine"
	"icc/internal/types"
)

// Silent is a party that crashed before the protocol started: it never
// sends anything and ignores everything.
type Silent struct {
	Self types.PartyID
}

// NewSilent returns a from-birth crashed party.
func NewSilent(self types.PartyID) *Silent { return &Silent{Self: self} }

// ID implements engine.Engine.
func (s *Silent) ID() types.PartyID { return s.Self }

// Init implements engine.Engine.
func (s *Silent) Init(time.Duration) []engine.Output { return nil }

// HandleMessage implements engine.Engine.
func (s *Silent) HandleMessage(types.PartyID, types.Message, time.Duration) []engine.Output {
	return nil
}

// Tick implements engine.Engine.
func (s *Silent) Tick(time.Duration) []engine.Output { return nil }

// NextWake implements engine.Engine.
func (s *Silent) NextWake(time.Duration) (time.Duration, bool) { return 0, false }

// CurrentRound implements engine.Engine.
func (s *Silent) CurrentRound() types.Round { return 0 }

var _ engine.Engine = (*Silent)(nil)

// Filter wraps an inner engine and rewrites its outputs — the chassis
// for selective misbehaviour. Transform receives each output and returns
// the outputs to actually transmit (possibly none, possibly several).
type Filter struct {
	Inner     engine.Engine
	Transform func(out engine.Output) []engine.Output
}

// ID implements engine.Engine.
func (f *Filter) ID() types.PartyID { return f.Inner.ID() }

// Init implements engine.Engine.
func (f *Filter) Init(now time.Duration) []engine.Output {
	return f.apply(f.Inner.Init(now))
}

// HandleMessage implements engine.Engine.
func (f *Filter) HandleMessage(from types.PartyID, m types.Message, now time.Duration) []engine.Output {
	return f.apply(f.Inner.HandleMessage(from, m, now))
}

// Tick implements engine.Engine.
func (f *Filter) Tick(now time.Duration) []engine.Output {
	return f.apply(f.Inner.Tick(now))
}

// NextWake implements engine.Engine.
func (f *Filter) NextWake(now time.Duration) (time.Duration, bool) { return f.Inner.NextWake(now) }

// CurrentRound implements engine.Engine.
func (f *Filter) CurrentRound() types.Round { return f.Inner.CurrentRound() }

func (f *Filter) apply(outs []engine.Output) []engine.Output {
	var res []engine.Output
	for _, o := range outs {
		res = append(res, f.Transform(o)...)
	}
	return res
}

var _ engine.Engine = (*Filter)(nil)

// isOwnProposal reports whether the output is the bundle an engine
// broadcasts when proposing its own block.
func isOwnProposal(self types.PartyID, o engine.Output) (*types.Bundle, *types.Block, bool) {
	b, ok := o.Msg.(*types.Bundle)
	if !ok || len(b.Messages) < 2 {
		return nil, nil, false
	}
	bm, ok := b.Messages[0].(*types.BlockMsg)
	if !ok || bm.Block == nil || bm.Block.Proposer != self {
		return nil, nil, false
	}
	return b, bm.Block, true
}

// NewSilentLeader wraps an honest engine so that it participates fully in
// notarization and finalization but never disseminates its own block
// proposals. In rounds where it is the leader, other parties must fall
// back to rank-1+ proposals after Δntry — the robustness path the paper
// highlights.
func NewSilentLeader(inner *core.Engine) engine.Engine {
	self := inner.ID()
	return &Filter{
		Inner: inner,
		Transform: func(o engine.Output) []engine.Output {
			if _, _, own := isOwnProposal(self, o); own {
				return nil
			}
			return []engine.Output{o}
		},
	}
}

// NewLazyVoter wraps an honest engine so that it never contributes
// notarization or finalization shares (but still proposes and relays) —
// a "consistent failure" that shrinks quorums without conspicuous
// misbehaviour.
func NewLazyVoter(inner *core.Engine) engine.Engine {
	return &Filter{
		Inner: inner,
		Transform: func(o engine.Output) []engine.Output {
			switch o.Msg.(type) {
			case *types.NotarizationShare, *types.FinalizationShare:
				return nil
			}
			return []engine.Output{o}
		},
	}
}

// NewEquivocator wraps an honest engine so that whenever it proposes a
// block, it creates a second, conflicting block for the same round and
// sends one to the first half of the parties and the other to the second
// half. It then keeps the lie consistent at the share layer: its own
// notarization share for the original block is likewise forked, with a
// twin share (a real S_notary signature over the twin's statement) sent
// to the parties that received the twin block. Honest parties that see
// both blocks must disqualify its rank (Fig. 1 clause (c)), pools that
// see both shares must keep them contained per block hash, and safety
// must survive regardless. n is the cluster size; priv the party's own
// key material (the twin block and twin share are properly signed —
// unsigned ones would simply be dropped at the pool).
func NewEquivocator(inner *core.Engine, n int, priv keys.Private) engine.Engine {
	self := inner.ID()
	type twinRec struct {
		orig, twin hash.Digest
	}
	twins := make(map[types.Round]twinRec)
	// split sends orig to the first half of the parties and alt to the
	// rest — consistently, so each victim sees one coherent story.
	split := func(orig, alt types.Message) []engine.Output {
		var outs []engine.Output
		for p := 0; p < n; p++ {
			pid := types.PartyID(p)
			if pid == self {
				continue
			}
			if p < n/2 {
				outs = append(outs, engine.Unicast(pid, orig))
			} else {
				outs = append(outs, engine.Unicast(pid, alt))
			}
		}
		return outs
	}
	return &Filter{
		Inner: inner,
		Transform: func(o engine.Output) []engine.Output {
			if bundle, blk, own := isOwnProposal(self, o); own {
				// Build the conflicting twin: same round and parent,
				// different payload.
				twin := &types.Block{
					Round:      blk.Round,
					Proposer:   blk.Proposer,
					ParentHash: blk.ParentHash,
					Payload:    append([]byte("equivocation:"), blk.Payload...),
				}
				th := twin.Hash()
				twinAuth := &types.Authenticator{
					Round: twin.Round, Proposer: twin.Proposer, BlockHash: th,
					Sig: sig.Sign(priv.Auth, types.DomainAuthenticator,
						types.SigningBytes(twin.Round, twin.Proposer, th)),
				}
				twinBundle := &types.Bundle{Messages: []types.Message{&types.BlockMsg{Block: twin}, twinAuth}}
				// Reuse the parent notarization from the original bundle.
				for _, m := range bundle.Messages {
					if nz, ok := m.(*types.Notarization); ok {
						twinBundle.Messages = append(twinBundle.Messages, nz)
					}
				}
				twins[blk.Round] = twinRec{orig: blk.Hash(), twin: th}
				for k := range twins {
					if k+8 < blk.Round {
						delete(twins, k)
					}
				}
				return split(bundle, twinBundle)
			}
			if s, ok := o.Msg.(*types.NotarizationShare); ok && s.Signer == self && s.Proposer == self {
				if rec, ok := twins[s.Round]; ok && s.BlockHash == rec.orig {
					twinShare := &types.NotarizationShare{
						Round: s.Round, Proposer: s.Proposer, BlockHash: rec.twin, Signer: self,
						Sig: priv.Notary.Sign(types.DomainNotarization,
							types.SigningBytes(s.Round, s.Proposer, rec.twin)).Signature,
					}
					return split(s, twinShare)
				}
			}
			return []engine.Output{o}
		},
	}
}

// NewEmptyProposer wraps an honest engine so that its proposals carry an
// empty payload — the "useless but not invalid" leader behaviour the
// paper notes cannot be prevented, only reconfigured away. It is built
// by giving the inner engine an EmptyPayload source, so this constructor
// exists only for symmetry and documentation.
func NewEmptyProposer(inner *core.Engine) engine.Engine { return inner }
