package obs

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// HandlerOptions configures the observability HTTP surface.
type HandlerOptions struct {
	// Registry backs /metrics (Prometheus text format).
	Registry *Registry
	// Tracer backs /trace (JSONL ring dump).
	Tracer *Tracer
	// Health backs /healthz; nil serves an always-healthy probe.
	Health func() Health
	// Ingress, when non-nil, serves the client API under /v1/ on the
	// same listener — one HTTP surface per node for operators and
	// clients alike.
	Ingress http.Handler
}

// NewHandler builds the endpoint map:
//
//	/metrics        Prometheus text exposition of the registry
//	/healthz        JSON health (HTTP 503 when commit progress stalled)
//	/trace          JSONL dump of the protocol event ring
//	/debug/pprof/*  standard Go profiling endpoints
//	/v1/*           client ingress (submit/read/wait), when configured
func NewHandler(o HandlerOptions) http.Handler {
	mux := http.NewServeMux()
	if o.Ingress != nil {
		mux.Handle("/v1/", o.Ingress)
	}
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = o.Registry.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		var h Health
		if o.Health != nil {
			h = o.Health()
		}
		w.Header().Set("Content-Type", "application/json")
		if h.Stalled {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		_ = json.NewEncoder(w).Encode(h)
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		_ = o.Tracer.WriteJSONL(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a running observability endpoint.
type Server struct {
	lis net.Listener
	srv *http.Server
}

// Serve starts the observability server on addr (":0" picks a free
// port; use Addr for the bound address). The server runs until Close.
func Serve(addr string, o HandlerOptions) (*Server, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{
		lis: lis,
		srv: &http.Server{Handler: NewHandler(o), ReadHeaderTimeout: 5 * time.Second},
	}
	go func() { _ = s.srv.Serve(lis) }()
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.lis.Addr().String() }

// Close shuts the server down.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	return s.srv.Close()
}
