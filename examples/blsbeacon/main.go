// Blsbeacon: the paper's random beacon (§2.3) on the real thing — a
// from-scratch BLS12-381 with threshold BLS signatures. Four parties
// each hold a Shamir share of the beacon key; any t+1 = 2 of them
// reconstruct each round's unique signature, every subset reconstructs
// the *same* value (uniqueness), and fewer than t+1 reconstruct nothing.
// The resulting digests drive the same rank permutation the consensus
// engines use.
//
//	go run ./examples/blsbeacon   (pairings are big.Int-slow: ~2 min)
package main

import (
	"crypto/rand"
	"fmt"
	"log"
	"time"

	"icc/internal/beacon"
	"icc/internal/crypto/bls"
	"icc/internal/types"
)

const n = 4

func main() {
	fmt.Println("dealing a (t, t+1, n) = (1, 2, 4) threshold-BLS beacon key...")
	pub, keys, err := bls.DealThreshold(rand.Reader, types.BeaconQuorum(n), n)
	if err != nil {
		log.Fatalf("dealing: %v", err)
	}
	beacons := make([]*beacon.BLS, n)
	for i := 0; i < n; i++ {
		beacons[i] = beacon.NewBLS(pub, keys[i], types.PartyID(i), []byte("example genesis"))
	}

	for round := types.Round(1); round <= 3; round++ {
		start := time.Now()
		// Every party signs its share of R_round.
		shares := make([]*types.BeaconShare, n)
		for i, b := range beacons {
			s, err := b.ShareForRound(round)
			if err != nil {
				log.Fatalf("party %d share: %v", i, err)
			}
			shares[i] = s
		}
		// Party 3 tries with a single share: must fail (unpredictability:
		// t corrupt parties alone can never learn the next beacon).
		if _, err := beacons[3].AddShare(shares[0]); err != nil {
			log.Fatal(err)
		}
		if _, ok := beacons[3].Reveal(round); ok {
			log.Fatal("revealed with 1 < t+1 shares?!")
		}
		// Different parties combine different share subsets...
		subsets := [][]int{{0, 1}, {2, 3}, {1, 2}, {0, 3}}
		var ref string
		for i, b := range beacons {
			for _, idx := range subsets[i] {
				if _, err := b.AddShare(shares[idx]); err != nil {
					log.Fatal(err)
				}
			}
			d, ok := b.Reveal(round)
			if !ok {
				log.Fatalf("party %d failed to reveal round %d", i, round)
			}
			// ...and all arrive at the identical unique value.
			if i == 0 {
				ref = d.Short()
			} else if d.Short() != ref {
				log.Fatalf("uniqueness violated: party %d got %s, want %s", i, d.Short(), ref)
			}
		}
		perm, _ := beacons[0].Permutation(round)
		leader, _ := beacons[0].Leader(round)
		fmt.Printf("round %d: R = %s…, ranking %v, leader P%d (pairing-verified, %v)\n",
			round, ref, perm, leader, time.Since(start).Round(time.Millisecond))
	}
	fmt.Println("\nevery subset of 2 shares produced the same beacon value — unique threshold signatures at work")
}
