package obs

import (
	"testing"
	"time"
)

func TestObserverLifecycleMetrics(t *testing.T) {
	o := NewObserver(ObserverConfig{Party: 3})

	o.BeaconRecovered(1, 40*time.Millisecond)
	o.EnterRound(1, 100*time.Millisecond)
	o.Propose(1, 110*time.Millisecond)
	o.NotarizationShare(1, 130*time.Millisecond)
	o.FinishRound(1, 150*time.Millisecond)
	o.FinalizationShare(1, 160*time.Millisecond)
	o.Commit(1, 64, 200*time.Millisecond)
	o.Resync(2, 300*time.Millisecond)
	o.MessageReceived()
	o.MessageReceived()
	o.TickFired()

	snap := o.Snapshot()
	for key, want := range map[string]float64{
		"icc_rounds_entered_total":                   1,
		"icc_proposals_total":                        1,
		"icc_notarization_shares_total":              1,
		"icc_finalization_shares_total":              1,
		"icc_rounds_notarized_total":                 1,
		"icc_blocks_committed_total":                 1,
		"icc_committed_payload_bytes_total":          64,
		"icc_resyncs_total":                          1,
		"icc_runtime_messages_received_total":        2,
		"icc_runtime_ticks_total":                    1,
		"icc_current_round":                          1,
		"icc_finalized_round":                        1,
		"icc_beacon_wait_seconds_count":              1,
		"icc_round_duration_seconds_count":           1,
		"icc_commit_latency_seconds_count":           1,
		"icc_notarization_share_delay_seconds_count": 1,
		"icc_finalization_share_delay_seconds_count": 1,
	} {
		if got := snap.Get(key); got != want {
			t.Fatalf("%s = %v, want %v", key, got, want)
		}
	}
	// Timings are measured from round entry.
	if got := snap.Get("icc_commit_latency_seconds_sum"); got != 0.1 {
		t.Fatalf("commit latency sum = %v, want 0.1", got)
	}
	if got := snap.Get("icc_round_duration_seconds_sum"); got != 0.05 {
		t.Fatalf("round duration sum = %v, want 0.05", got)
	}

	// Every phase left a trace event stamped with the party.
	events := o.Tracer.Events()
	kinds := map[string]int{}
	for _, e := range events {
		kinds[e.Kind]++
		if e.Party != 3 {
			t.Fatalf("event %+v not stamped with party 3", e)
		}
	}
	for _, k := range []string{KindRoundEntered, KindProposed, KindNotarShare,
		KindFinalShare, KindRoundNotarized, KindCommitted, KindResync} {
		if kinds[k] != 1 {
			t.Fatalf("trace kind %q count = %d, want 1 (all: %v)", k, kinds[k], kinds)
		}
	}
}

func TestObserverSharedRegistryAggregates(t *testing.T) {
	reg := NewRegistry()
	a := NewObserver(ObserverConfig{Registry: reg, Party: 0})
	b := NewObserver(ObserverConfig{Registry: reg, Party: 1})
	a.EnterRound(1, 0)
	b.EnterRound(1, 0)
	if got := reg.Snapshot().Get("icc_rounds_entered_total"); got != 2 {
		t.Fatalf("shared counter = %v, want 2 (one per party)", got)
	}
}

func TestObserverNilIsNoOp(t *testing.T) {
	var o *Observer
	o.BeaconRecovered(1, time.Millisecond)
	o.EnterRound(1, 0)
	o.Propose(1, 0)
	o.NotarizationShare(1, 0)
	o.FinalizationShare(1, 0)
	o.FinishRound(1, 0)
	o.Commit(1, 10, 0)
	o.Resync(1, 0)
	o.MessageReceived()
	o.TickFired()
	if len(o.Snapshot()) != 0 {
		t.Fatal("nil observer produced a snapshot")
	}
	if h := o.HealthFunc(time.Second)(); h.Stalled || h.Commits != 0 {
		t.Fatalf("nil observer health: %+v", h)
	}
}

func TestHealthTrackerStallDetection(t *testing.T) {
	h := NewHealthTracker()
	// No commits yet: age runs from creation — fresh tracker is healthy.
	if got := h.Health(time.Hour); got.Stalled {
		t.Fatalf("fresh tracker stalled: %+v", got)
	}
	// A microscopic stall window flags immediately.
	time.Sleep(2 * time.Millisecond)
	if got := h.Health(time.Nanosecond); !got.Stalled {
		t.Fatalf("expected stall with 1ns window: %+v", got)
	}
	h.Touch()
	got := h.Health(time.Hour)
	if got.Stalled || got.Commits != 1 {
		t.Fatalf("post-commit health: %+v", got)
	}
	if got.StallAfterSeconds != 3600 {
		t.Fatalf("stall window = %v, want 3600", got.StallAfterSeconds)
	}
	// Zero window disables stall detection entirely.
	if got := h.Health(0); got.Stalled {
		t.Fatalf("zero window flagged a stall: %+v", got)
	}
	var nilH *HealthTracker
	nilH.Touch()
	if got := nilH.Health(time.Nanosecond); got.Stalled {
		t.Fatalf("nil tracker stalled: %+v", got)
	}
}
