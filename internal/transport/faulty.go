package transport

import (
	"math/rand"
	"sync"
	"time"

	"icc/internal/types"
)

// FaultPlan is a deterministic, seedable fault schedule for a Faulty
// endpoint. Probabilistic faults (drop, duplicate, delay) are drawn
// from a rand stream seeded with Seed, so given the same sequence of
// Send calls the same faults occur; timed partitions are purely a
// function of elapsed time. Rates are probabilities in [0, 1].
type FaultPlan struct {
	Seed int64

	// DropRate silently discards an outbound message.
	DropRate float64
	// DupRate transmits an outbound message twice.
	DupRate float64
	// DelayRate holds an outbound message for a uniform random delay in
	// (0, MaxDelay], reordering it behind later traffic.
	DelayRate float64
	MaxDelay  time.Duration

	// FaultsUntil, if positive, confines the probabilistic faults to the
	// first FaultsUntil of the endpoint's lifetime — after that the
	// network is clean, the configuration chaos tests use to assert
	// "finalization resumes after the faults end".
	FaultsUntil time.Duration

	// Partitions are timed bidirectional cuts between party sets.
	Partitions []PartitionWindow
}

// PartitionWindow severs all traffic between the parties in A and the
// parties in B (both directions) during [From, To), measured from the
// endpoint's creation. Messages crossing the cut are black-holed, as on
// a real partition — recovery is the protocol's job.
type PartitionWindow struct {
	From, To time.Duration
	A, B     []types.PartyID
}

// cut reports whether the window severs the (from, to) link at offset t.
func (w PartitionWindow) cut(from, to types.PartyID, t time.Duration) bool {
	if t < w.From || t >= w.To {
		return false
	}
	return (containsParty(w.A, from) && containsParty(w.B, to)) ||
		(containsParty(w.B, from) && containsParty(w.A, to))
}

func containsParty(set []types.PartyID, p types.PartyID) bool {
	for _, q := range set {
		if q == p {
			return true
		}
	}
	return false
}

// FaultyStats counts the faults a Faulty endpoint has injected.
type FaultyStats struct {
	Dropped    int64 // outbound messages discarded by DropRate
	Duplicated int64 // outbound messages sent twice
	Delayed    int64 // outbound messages held for reordering
	Cut        int64 // messages black-holed by a partition (both directions)
}

// Faulty wraps an Endpoint with fault injection, so the identical
// engine + runner stack that runs in production can be exercised under
// message drops, duplication, reordering, and timed partitions — the
// message-adversary behaviours the paper's robustness claims are about.
// Outbound messages pass through the probabilistic fault schedule;
// partitions are enforced on both the send and receive side, so a
// partition holds even when the remote endpoint is not wrapped.
type Faulty struct {
	inner Endpoint
	self  types.PartyID
	plan  FaultPlan

	out  chan Envelope
	done chan struct{}
	wg   sync.WaitGroup
	once sync.Once

	// now returns the elapsed offset used for windows; replaceable in
	// tests for deterministic timing.
	now func() time.Duration

	mu    sync.Mutex
	rng   *rand.Rand
	stats FaultyStats

	closeErr error
}

// NewFaulty wraps inner, which speaks for party self, in the given
// fault plan. The plan's time windows start now.
func NewFaulty(inner Endpoint, self types.PartyID, plan FaultPlan) *Faulty {
	start := time.Now()
	f := &Faulty{
		inner: inner,
		self:  self,
		plan:  plan,
		out:   make(chan Envelope, inboxSize),
		done:  make(chan struct{}),
		now:   func() time.Duration { return time.Since(start) },
		rng:   rand.New(rand.NewSource(plan.Seed)),
	}
	f.wg.Add(1)
	go f.pump()
	return f
}

// Stats returns a snapshot of the injected-fault counters.
func (f *Faulty) Stats() FaultyStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// partitioned reports whether the link between self and peer is cut.
func (f *Faulty) partitioned(peer types.PartyID, t time.Duration) bool {
	for _, w := range f.plan.Partitions {
		if w.cut(f.self, peer, t) {
			return true
		}
	}
	return false
}

// roll draws this message's probabilistic fault decisions.
func (f *Faulty) roll(t time.Duration) (drop, dup bool, delay time.Duration) {
	if f.plan.FaultsUntil > 0 && t >= f.plan.FaultsUntil {
		return false, false, 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.plan.DropRate > 0 && f.rng.Float64() < f.plan.DropRate {
		f.stats.Dropped++
		return true, false, 0
	}
	if f.plan.DupRate > 0 && f.rng.Float64() < f.plan.DupRate {
		f.stats.Duplicated++
		dup = true
	}
	if f.plan.DelayRate > 0 && f.plan.MaxDelay > 0 && f.rng.Float64() < f.plan.DelayRate {
		f.stats.Delayed++
		delay = time.Duration(1 + f.rng.Int63n(int64(f.plan.MaxDelay)))
	}
	return false, dup, delay
}

// Send implements Endpoint, applying the fault schedule.
func (f *Faulty) Send(to types.PartyID, m types.Message) error {
	t := f.now()
	if f.partitioned(to, t) {
		f.mu.Lock()
		f.stats.Cut++
		f.mu.Unlock()
		return nil // black-holed, as on a real partition
	}
	drop, dup, delay := f.roll(t)
	if drop {
		return nil
	}
	if delay > 0 {
		f.wg.Add(1)
		go func() {
			defer f.wg.Done()
			timer := time.NewTimer(delay)
			defer timer.Stop()
			select {
			case <-f.done:
			case <-timer.C:
				_ = f.inner.Send(to, m) // late send: endpoint may have closed
			}
		}()
		if !dup {
			return nil
		}
		// dup + delay: one copy now, one late — maximal reordering.
	}
	err := f.inner.Send(to, m)
	if dup && delay == 0 {
		_ = f.inner.Send(to, m)
	}
	return err
}

// pump forwards the inner inbox, enforcing partitions on the receive
// side too (bidirectional cut even against unwrapped remotes).
func (f *Faulty) pump() {
	defer f.wg.Done()
	defer close(f.out)
	for {
		var env Envelope
		var ok bool
		select {
		case <-f.done:
			return
		case env, ok = <-f.inner.Inbox():
			if !ok {
				return
			}
		}
		if f.partitioned(env.From, f.now()) {
			f.mu.Lock()
			f.stats.Cut++
			f.mu.Unlock()
			continue
		}
		select {
		case f.out <- env:
		default:
			// Mirror endpoint overflow semantics: drop on overload.
		}
	}
}

// Inbox implements Endpoint.
func (f *Faulty) Inbox() <-chan Envelope { return f.out }

// Close implements Endpoint. It closes the inner endpoint (whose inbox
// closure drains the pump) and waits for all injected goroutines.
func (f *Faulty) Close() error {
	f.once.Do(func() {
		close(f.done)
		f.closeErr = f.inner.Close()
		f.wg.Wait()
	})
	return f.closeErr
}

var _ Endpoint = (*Faulty)(nil)
