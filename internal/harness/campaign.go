package harness

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"icc/internal/obs"
	"icc/internal/simnet"
	"icc/internal/types"
)

// Profile is one named adversary configuration of a campaign: a cluster
// size plus the Byzantine role assignment to attack it with. The matrix
// the campaign sweeps is profiles × seeds.
type Profile struct {
	Name      string
	N         int
	Behaviors map[types.PartyID]Behavior
	Tuning    map[types.PartyID]BehaviorTuning

	// ExpectStall marks profiles whose adversary provably exceeds the
	// finalization fault threshold (more than t withheld finalization
	// quorum members, forever): the pass condition inverts — honest
	// parties must NOT commit anything, and any commit is a failure of
	// the experiment's threshold model.
	ExpectStall bool

	// MinCommits / MaxStall override the campaign-wide liveness floor
	// and commit-gap bound for this profile (0 = inherit). Profiles with
	// a scheduled rejoin (Tuning.Until) need a MaxStall larger than the
	// engineered stall.
	MinCommits int
	MaxStall   time.Duration
}

// CampaignOptions configures a campaign sweep.
type CampaignOptions struct {
	// Seeds to run every profile under.
	Seeds []int64
	// SimTime is the virtual-time budget per run.
	SimTime time.Duration
	// DeltaBound is the engines' Δbnd (default 100ms).
	DeltaBound time.Duration
	// DelayMin/DelayMax parameterise the uniform message-delay model
	// (defaults 5–15ms); kept scalar so a trace header can reconstruct
	// the exact delay model for replay.
	DelayMin, DelayMax time.Duration
	// MinCommits is the liveness floor: every honest party must commit
	// at least this many blocks within SimTime (default 10).
	MinCommits int
	// MaxStall, if positive, bounds the largest gap between successive
	// honest commits (including the run's leading and trailing gaps).
	MaxStall time.Duration
	// TraceDir receives the replayable JSONL trace of each failing run
	// (default os.TempDir()).
	TraceDir string
	// TraceCap bounds the per-run trace ring. It must comfortably exceed
	// the run's event count: a wrapped ring is truncated history and the
	// replayer refuses it. Default 1 << 19.
	TraceCap int
}

func (o CampaignOptions) withDefaults() CampaignOptions {
	if o.SimTime == 0 {
		o.SimTime = 20 * time.Second
	}
	if o.DeltaBound == 0 {
		o.DeltaBound = 100 * time.Millisecond
	}
	if o.DelayMin == 0 && o.DelayMax == 0 {
		o.DelayMin, o.DelayMax = 5*time.Millisecond, 15*time.Millisecond
	}
	if o.MinCommits == 0 {
		o.MinCommits = 10
	}
	if o.TraceDir == "" {
		o.TraceDir = os.TempDir()
	}
	if o.TraceCap == 0 {
		o.TraceCap = 1 << 19
	}
	if len(o.Seeds) == 0 {
		o.Seeds = []int64{1}
	}
	return o
}

// RunRecord is the outcome of one (profile, seed) cell of the matrix.
type RunRecord struct {
	Profile string
	Seed    int64
	// Commits is the minimum committed-chain length among honest parties.
	Commits int
	// Failure is empty for a passing run, else a one-line verdict
	// ("safety: ...", "liveness: ...", "stall: ...").
	Failure string
	// TracePath is where the failing run's replayable trace was written.
	TracePath string
}

// CampaignReport aggregates a swept matrix.
type CampaignReport struct {
	Runs     []RunRecord
	Failures int
}

// detReader is a deterministic io.Reader: an unbounded SHA-256 counter
// stream keyed by seed. The campaign deals cluster keys from it so a
// replayed run — possibly in another process, days later — derives
// byte-identical key material and hence a byte-identical trace.
type detReader struct {
	seed int64
	ctr  uint64
	buf  []byte
}

func newDetReader(seed int64) *detReader { return &detReader{seed: seed} }

func (r *detReader) Read(p []byte) (int, error) {
	n := 0
	for n < len(p) {
		if len(r.buf) == 0 {
			var block [16]byte
			binary.LittleEndian.PutUint64(block[:8], uint64(r.seed))
			binary.LittleEndian.PutUint64(block[8:], r.ctr)
			r.ctr++
			sum := sha256.Sum256(block[:])
			r.buf = sum[:]
		}
		c := copy(p[n:], r.buf)
		r.buf = r.buf[c:]
		n += c
	}
	return n, nil
}

// minCommits / maxStall resolve the per-profile overrides.
func (p Profile) minCommits(o CampaignOptions) int {
	if p.MinCommits > 0 {
		return p.MinCommits
	}
	return o.MinCommits
}

func (p Profile) maxStall(o CampaignOptions) time.Duration {
	if p.MaxStall > 0 {
		return p.MaxStall
	}
	return o.MaxStall
}

// runProfile executes one (profile, seed) cell, recording the execution
// into tr when non-nil, and returns (min honest commits, failure).
func runProfile(p Profile, seed int64, o CampaignOptions, tr *obs.Tracer) (int, string, error) {
	c, err := New(Options{
		N:          p.N,
		Seed:       seed,
		Delay:      simnet.Uniform{Min: o.DelayMin, Max: o.DelayMax},
		DeltaBound: o.DeltaBound,
		SimBeacon:  true,
		Behaviors:  p.Behaviors,
		Tuning:     p.Tuning,
		KeyRand:    newDetReader(seed),
		Trace:      tr,
	})
	if err != nil {
		return 0, "", err
	}
	c.Start()
	c.Net.Run(o.SimTime)

	honest := c.HonestParties()
	commits := c.MinCommitted(honest)

	// Safety first: it binds unconditionally, whatever the adversary.
	if err := c.CheckSafety(); err != nil {
		return commits, "safety: " + err.Error(), nil
	}
	if p.ExpectStall {
		if commits > 0 {
			return commits, fmt.Sprintf("threshold: expected finalization stall but honest parties committed %d blocks", commits), nil
		}
		return commits, "", nil
	}
	if min := p.minCommits(o); commits < min {
		return commits, fmt.Sprintf("liveness: honest parties committed %d < %d blocks in %v", commits, min, o.SimTime), nil
	}
	if ms := p.maxStall(o); ms > 0 {
		for _, pid := range honest {
			if gap := maxCommitGap(c.CommittedAt(pid), o.SimTime); gap > ms {
				return commits, fmt.Sprintf("stall: party %d saw a %v commit gap > %v", pid, gap, ms), nil
			}
		}
	}
	return commits, "", nil
}

// maxCommitGap returns the largest interval without a commit across the
// whole run window [0, end], including the leading and trailing gaps.
func maxCommitGap(times []time.Duration, end time.Duration) time.Duration {
	if len(times) == 0 {
		return end
	}
	gap := times[0]
	for i := 1; i < len(times); i++ {
		if d := times[i] - times[i-1]; d > gap {
			gap = d
		}
	}
	if d := end - times[len(times)-1]; d > gap {
		gap = d
	}
	return gap
}

// RunCampaign sweeps profiles × seeds. Every failing cell re-executes
// with tracing enabled and writes a self-contained replayable JSONL
// trace into TraceDir; passing cells run trace-free (the trace hook
// costs allocation on every simulator event).
func RunCampaign(profiles []Profile, o CampaignOptions) (*CampaignReport, error) {
	o = o.withDefaults()
	rep := &CampaignReport{}
	for _, p := range profiles {
		for _, seed := range o.Seeds {
			commits, failure, err := runProfile(p, seed, o, nil)
			if err != nil {
				return nil, fmt.Errorf("campaign %s seed %d: %w", p.Name, seed, err)
			}
			rec := RunRecord{Profile: p.Name, Seed: seed, Commits: commits, Failure: failure}
			if failure != "" {
				rep.Failures++
				path, err := WriteFailureTrace(p, seed, o)
				if err != nil {
					return nil, fmt.Errorf("campaign %s seed %d: writing trace: %w", p.Name, seed, err)
				}
				rec.TracePath = path
			}
			rep.Runs = append(rep.Runs, rec)
		}
	}
	return rep, nil
}

// WriteFailureTrace re-executes one cell with tracing enabled and writes
// the self-contained replay artifact (configuration in the header Meta,
// deterministic execution record in the events). It returns the file
// path.
func WriteFailureTrace(p Profile, seed int64, o CampaignOptions) (string, error) {
	o = o.withDefaults()
	tr := obs.NewTracer(o.TraceCap)
	tr.DisableWallStamp()
	commits, failure, err := runProfile(p, seed, o, tr)
	if err != nil {
		return "", err
	}
	meta := campaignMeta(p, seed, o)
	meta["failure"] = failure
	meta["commits"] = strconv.Itoa(commits)
	path := filepath.Join(o.TraceDir, fmt.Sprintf("icc-campaign-%s-seed%d.jsonl", p.Name, seed))
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	if err := tr.WriteJSONLMeta(f, meta); err != nil {
		return "", err
	}
	return path, f.Close()
}

// campaignMeta flattens the cell configuration into the trace header.
func campaignMeta(p Profile, seed int64, o CampaignOptions) map[string]string {
	return map[string]string{
		"campaign":     "icc-adversary",
		"profile":      p.Name,
		"n":            strconv.Itoa(p.N),
		"seed":         strconv.FormatInt(seed, 10),
		"behaviors":    encodeBehaviors(p),
		"expect_stall": strconv.FormatBool(p.ExpectStall),
		"min_commits":  strconv.Itoa(p.minCommits(o)),
		"max_stall":    p.maxStall(o).String(),
		"sim_time":     o.SimTime.String(),
		"delta_bound":  o.DeltaBound.String(),
		"delay_min":    o.DelayMin.String(),
		"delay_max":    o.DelayMax.String(),
		"trace_cap":    strconv.Itoa(o.TraceCap),
	}
}

// encodeBehaviors serialises the role assignment (with tunings) as
// "pid=behavior[;until=d][;skew=d][;delay=d]" clauses joined by ",",
// sorted by party for determinism.
func encodeBehaviors(p Profile) string {
	ids := make([]int, 0, len(p.Behaviors))
	for pid := range p.Behaviors {
		ids = append(ids, int(pid))
	}
	sort.Ints(ids)
	clauses := make([]string, 0, len(ids))
	for _, id := range ids {
		pid := types.PartyID(id)
		clause := fmt.Sprintf("%d=%s", id, p.Behaviors[pid])
		if t, ok := p.Tuning[pid]; ok {
			if t.Until != 0 {
				clause += ";until=" + t.Until.String()
			}
			if t.Skew != 0 {
				clause += ";skew=" + t.Skew.String()
			}
			if t.ShareDelay != 0 {
				clause += ";delay=" + t.ShareDelay.String()
			}
		}
		clauses = append(clauses, clause)
	}
	return strings.Join(clauses, ",")
}

// decodeBehaviors inverts encodeBehaviors.
func decodeBehaviors(s string) (map[types.PartyID]Behavior, map[types.PartyID]BehaviorTuning, error) {
	behaviors := map[types.PartyID]Behavior{}
	tuning := map[types.PartyID]BehaviorTuning{}
	if s == "" {
		return behaviors, tuning, nil
	}
	for _, clause := range strings.Split(s, ",") {
		parts := strings.Split(clause, ";")
		pidStr, name, ok := strings.Cut(parts[0], "=")
		if !ok {
			return nil, nil, fmt.Errorf("harness: bad behavior clause %q", clause)
		}
		id, err := strconv.Atoi(pidStr)
		if err != nil {
			return nil, nil, fmt.Errorf("harness: bad party id in %q: %w", clause, err)
		}
		b, err := ParseBehavior(name)
		if err != nil {
			return nil, nil, err
		}
		pid := types.PartyID(id)
		behaviors[pid] = b
		var t BehaviorTuning
		for _, kv := range parts[1:] {
			key, val, ok := strings.Cut(kv, "=")
			if !ok {
				return nil, nil, fmt.Errorf("harness: bad tuning clause %q", kv)
			}
			d, err := time.ParseDuration(val)
			if err != nil {
				return nil, nil, fmt.Errorf("harness: bad tuning duration %q: %w", kv, err)
			}
			switch key {
			case "until":
				t.Until = d
			case "skew":
				t.Skew = d
			case "delay":
				t.ShareDelay = d
			default:
				return nil, nil, fmt.Errorf("harness: unknown tuning key %q", key)
			}
		}
		if t != (BehaviorTuning{}) {
			tuning[pid] = t
		}
	}
	return behaviors, tuning, nil
}

// ReplayReport is the outcome of re-executing a recorded failure.
type ReplayReport struct {
	Profile string
	Seed    int64
	// Reproduced is true when the re-run hit the same failure verdict.
	Reproduced bool
	// ByteIdentical is true when the re-run's serialised trace matches
	// the recorded file byte for byte.
	ByteIdentical bool
	// DivergeLine is the first differing line (1-based, counting the
	// header as line 1) when not byte-identical; 0 otherwise.
	DivergeLine int
	// RecordedFailure / ReplayFailure are the two verdicts.
	RecordedFailure string
	ReplayFailure   string
}

// ReplayTrace re-executes the run recorded in a campaign trace file and
// verifies the failure reproduces deterministically: same verdict, and a
// byte-identical event stream. Truncated traces (ring overflow at record
// time) are refused — a partial history cannot vouch for a replay.
func ReplayTrace(path string) (*ReplayReport, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	header, _, err := obs.ReadJSONL(bytes.NewReader(raw))
	if err != nil {
		return nil, err
	}
	if header.Dropped > 0 {
		return nil, fmt.Errorf("harness: trace %s is truncated: ring dropped %d of %d events; raise CampaignOptions.TraceCap (was %d) and re-record",
			path, header.Dropped, header.Total, header.Cap)
	}
	p, seed, o, err := cellFromMeta(header.Meta)
	if err != nil {
		return nil, fmt.Errorf("harness: trace %s: %w", path, err)
	}

	tr := obs.NewTracer(o.TraceCap)
	tr.DisableWallStamp()
	commits, failure, err := runProfile(p, seed, o, tr)
	if err != nil {
		return nil, err
	}
	meta := campaignMeta(p, seed, o)
	meta["failure"] = failure
	meta["commits"] = strconv.Itoa(commits)
	var buf bytes.Buffer
	if err := tr.WriteJSONLMeta(&buf, meta); err != nil {
		return nil, err
	}

	rep := &ReplayReport{
		Profile:         p.Name,
		Seed:            seed,
		RecordedFailure: header.Meta["failure"],
		ReplayFailure:   failure,
	}
	rep.Reproduced = failure != "" && failure == rep.RecordedFailure
	if bytes.Equal(buf.Bytes(), raw) {
		rep.ByteIdentical = true
	} else {
		rep.DivergeLine = firstDivergingLine(raw, buf.Bytes())
	}
	return rep, nil
}

// cellFromMeta reconstructs the (profile, seed, options) cell from a
// trace header.
func cellFromMeta(meta map[string]string) (Profile, int64, CampaignOptions, error) {
	var p Profile
	var o CampaignOptions
	if meta == nil {
		return p, 0, o, fmt.Errorf("trace header has no campaign metadata")
	}
	var err error
	if p.N, err = strconv.Atoi(meta["n"]); err != nil {
		return p, 0, o, fmt.Errorf("bad n: %w", err)
	}
	seed, err := strconv.ParseInt(meta["seed"], 10, 64)
	if err != nil {
		return p, 0, o, fmt.Errorf("bad seed: %w", err)
	}
	p.Name = meta["profile"]
	p.ExpectStall = meta["expect_stall"] == "true"
	if p.Behaviors, p.Tuning, err = decodeBehaviors(meta["behaviors"]); err != nil {
		return p, 0, o, err
	}
	if p.MinCommits, err = strconv.Atoi(meta["min_commits"]); err != nil {
		return p, 0, o, fmt.Errorf("bad min_commits: %w", err)
	}
	durs := map[string]*time.Duration{
		"max_stall":   &p.MaxStall,
		"sim_time":    &o.SimTime,
		"delta_bound": &o.DeltaBound,
		"delay_min":   &o.DelayMin,
		"delay_max":   &o.DelayMax,
	}
	for key, dst := range durs {
		if *dst, err = time.ParseDuration(meta[key]); err != nil {
			return p, 0, o, fmt.Errorf("bad %s: %w", key, err)
		}
	}
	if o.TraceCap, err = strconv.Atoi(meta["trace_cap"]); err != nil {
		return p, 0, o, fmt.Errorf("bad trace_cap: %w", err)
	}
	o.MinCommits = p.MinCommits
	o.MaxStall = p.MaxStall
	o.Seeds = []int64{seed}
	return p, seed, o, nil
}

// firstDivergingLine locates the first line where two JSONL dumps differ
// (1-based; 0 if one is a strict prefix of the other with no differing
// line — then the shorter stream's length+1 is reported).
func firstDivergingLine(a, b []byte) int {
	la := strings.Split(string(a), "\n")
	lb := strings.Split(string(b), "\n")
	n := len(la)
	if len(lb) < n {
		n = len(lb)
	}
	for i := 0; i < n; i++ {
		if la[i] != lb[i] {
			return i + 1
		}
	}
	return n + 1
}

// ShrinkResult is the outcome of minimising a failing cell.
type ShrinkResult struct {
	// Profile is the minimised profile: the same cell with every
	// behaviour not needed for the failure removed (its party honest
	// again).
	Profile Profile
	// Failure is the minimised cell's verdict.
	Failure string
	// Runs is how many re-executions the search used.
	Runs int
}

// Shrink greedily minimises a failing (profile, seed) cell to a
// 1-minimal behaviour set: it repeatedly removes one Byzantine role,
// keeps the removal whenever the cell still fails, and stops when every
// remaining role is necessary (removing any single one makes the run
// pass). Greedy 1-minimality is not a global minimum, but for threshold
// adversaries it lands exactly on the quorum arithmetic — e.g. two
// finalization withholders out of a larger cast, because t+1 = 2 is what
// stalls n = 4.
func Shrink(p Profile, seed int64, o CampaignOptions) (*ShrinkResult, error) {
	o = o.withDefaults()
	_, failure, err := runProfile(p, seed, o, nil)
	if err != nil {
		return nil, err
	}
	res := &ShrinkResult{Profile: p, Failure: failure, Runs: 1}
	if failure == "" {
		return res, fmt.Errorf("harness: cell %s/seed %d passes; nothing to shrink", p.Name, seed)
	}
	for {
		shrunk := false
		// Deterministic removal order: ascending party id.
		ids := make([]int, 0, len(res.Profile.Behaviors))
		for pid := range res.Profile.Behaviors {
			ids = append(ids, int(pid))
		}
		sort.Ints(ids)
		for _, id := range ids {
			pid := types.PartyID(id)
			candidate := res.Profile
			candidate.Behaviors = cloneWithout(res.Profile.Behaviors, pid)
			candidate.Tuning = cloneTuningWithout(res.Profile.Tuning, pid)
			_, failure, err := runProfile(candidate, seed, o, nil)
			res.Runs++
			if err != nil {
				return nil, err
			}
			if failure != "" {
				res.Profile = candidate
				res.Failure = failure
				shrunk = true
				break
			}
		}
		if !shrunk {
			return res, nil
		}
	}
}

func cloneWithout(m map[types.PartyID]Behavior, drop types.PartyID) map[types.PartyID]Behavior {
	out := make(map[types.PartyID]Behavior, len(m))
	for k, v := range m {
		if k != drop {
			out[k] = v
		}
	}
	return out
}

func cloneTuningWithout(m map[types.PartyID]BehaviorTuning, drop types.PartyID) map[types.PartyID]BehaviorTuning {
	out := make(map[types.PartyID]BehaviorTuning, len(m))
	for k, v := range m {
		if k != drop {
			out[k] = v
		}
	}
	return out
}
