package gossip

import (
	"testing"
	"time"

	"icc/internal/beacon"
	"icc/internal/crypto/thresig"
	"icc/internal/engine"
	"icc/internal/types"
)

// feedingSink mimics the real engine's beacon handling: every delivered
// beacon share is fed into the party's beacon source, the way the
// consensus engine does before checking for quorum.
type feedingSink struct {
	sink
	src beacon.Source
}

func (s *feedingSink) HandleMessage(from types.PartyID, m types.Message, now time.Duration) []engine.Output {
	if bs, ok := m.(*types.BeaconShare); ok {
		s.src.AddShare(bs)
	}
	return s.sink.HandleMessage(from, m, now)
}

func beaconShare(k types.Round, signer types.PartyID) *types.BeaconShare {
	return &types.BeaconShare{Round: k, Signer: signer, Share: make([]byte, thresig.SigShareLen)}
}

// recoveredOutput drives an independent Simulated source to quorum for
// round k and returns the verifiable encoded output.
func recoveredOutput(t *testing.T, n int, k types.Round, seed []byte) []byte {
	t.Helper()
	remote := beacon.NewSimulated(n, 1, seed)
	for r := types.Round(1); r <= k; r++ {
		for i := 0; i < types.BeaconQuorum(n); i++ {
			remote.AddShare(beaconShare(r, types.PartyID(i)))
		}
		if _, ok := remote.Reveal(r); !ok {
			t.Fatalf("remote beacon not recoverable at round %d", r)
		}
	}
	out, ok := remote.EncodeOutput(k)
	if !ok {
		t.Fatalf("no encodable output for round %d", k)
	}
	return out
}

func countKind[T types.Message](outs []engine.Output) int {
	n := 0
	for _, o := range outs {
		if _, ok := o.Msg.(T); ok {
			n++
		}
	}
	return n
}

func TestBeaconOutputInstalledAndRelayed(t *testing.T) {
	seed := []byte("genesis")
	src := beacon.NewSimulated(7, 0, seed)
	inner := &feedingSink{sink: sink{id: 0}, src: src}
	g := Wrap(Config{Self: 0, N: 7, Fanout: 3, Seed: 1, Outputs: src}, inner)

	out := recoveredOutput(t, 7, 1, seed)
	outs := g.HandleMessage(g.Peers()[0], &types.BeaconOutput{Round: 1, Output: out}, 0)
	if !src.Have(1) {
		t.Fatal("verified output not installed")
	}
	if got := countKind[*types.BeaconOutput](outs); got != len(g.Peers())-1 {
		t.Fatalf("output relayed to %d peers, want %d", got, len(g.Peers())-1)
	}
	// The output is consumed by the gossip layer, never delivered inward.
	if len(inner.received) != 0 {
		t.Fatalf("inner engine received %d messages, want 0", len(inner.received))
	}
	// Duplicate copy: dropped entirely.
	if outs := g.HandleMessage(g.Peers()[1], &types.BeaconOutput{Round: 1, Output: out}, 0); len(outs) != 0 {
		t.Fatal("duplicate output re-relayed")
	}
	// A round-1 share arriving after the output: delivered (the inner
	// engine may still want it) but no longer relayed — the one output
	// supersedes the share flood.
	outs = g.HandleMessage(g.Peers()[0], beaconShare(1, 5), 0)
	if len(inner.received) != 1 {
		t.Fatal("share after output not delivered to inner engine")
	}
	if got := countKind[*types.BeaconShare](outs); got != 0 {
		t.Fatalf("share relayed %d times after the round's output was known", got)
	}
}

func TestBeaconOutputForgedRejectedThenRetried(t *testing.T) {
	seed := []byte("genesis")
	src := beacon.NewSimulated(7, 0, seed)
	inner := &feedingSink{sink: sink{id: 0}, src: src}
	g := Wrap(Config{Self: 0, N: 7, Fanout: 3, Seed: 1, Outputs: src}, inner)

	forged := make([]byte, 32)
	if outs := g.HandleMessage(g.Peers()[0], &types.BeaconOutput{Round: 1, Output: forged}, 0); len(outs) != 0 {
		t.Fatal("forged output relayed")
	}
	if src.Have(1) {
		t.Fatal("forged output installed")
	}

	// An output from a round ahead of us fails verification (R_1 is not
	// known yet) but must not be poisoned: the identical bytes succeed
	// once we catch up.
	out2 := recoveredOutput(t, 7, 2, seed)
	if outs := g.HandleMessage(g.Peers()[0], &types.BeaconOutput{Round: 2, Output: out2}, 0); len(outs) != 0 || src.Have(2) {
		t.Fatal("unverifiable ahead-of-us output accepted")
	}
	out1 := recoveredOutput(t, 7, 1, seed)
	g.HandleMessage(g.Peers()[0], &types.BeaconOutput{Round: 1, Output: out1}, 0)
	if outs := g.HandleMessage(g.Peers()[1], &types.BeaconOutput{Round: 2, Output: out2}, 0); len(outs) == 0 || !src.Have(2) {
		t.Fatal("retried output rejected after catch-up")
	}
}

func TestBeaconOutputEmittedOnLocalRecovery(t *testing.T) {
	seed := []byte("genesis")
	src := beacon.NewSimulated(7, 0, seed)
	inner := &feedingSink{sink: sink{id: 0}, src: src}
	g := Wrap(Config{Self: 0, N: 7, Fanout: 3, Seed: 1, Outputs: src}, inner)

	q := types.BeaconQuorum(7)
	var emitted int
	for i := 0; i < q; i++ {
		outs := g.HandleMessage(g.Peers()[0], beaconShare(1, types.PartyID(i+1)), 0)
		emitted += countKind[*types.BeaconOutput](outs)
	}
	if emitted != len(g.Peers()) {
		t.Fatalf("quorum crossing emitted %d outputs, want one per peer (%d)", emitted, len(g.Peers()))
	}
	if !src.Have(1) {
		t.Fatal("local recovery did not reveal the round")
	}
	// Further shares for the round: delivered, no relay, no re-emission.
	outs := g.HandleMessage(g.Peers()[0], beaconShare(1, types.PartyID(q+2)), 0)
	if countKind[*types.BeaconOutput](outs) != 0 || countKind[*types.BeaconShare](outs) != 0 {
		t.Fatal("post-recovery share still relayed or output re-emitted")
	}
}

func TestAdaptiveBatchWindow(t *testing.T) {
	const window = 10 * time.Millisecond
	inner := &sink{id: 0}
	g := Wrap(Config{Self: 0, N: 7, Fanout: 3, Seed: 1, ShareBatchWindow: window, AdaptiveBatch: true}, inner)
	relayed := func(outs []engine.Output) int {
		return countKind[*types.BeaconShare](outs) + countKind[*types.ShareBundle](outs)
	}

	// An isolated share on an idle party goes out immediately — no
	// window latency.
	if got := relayed(g.HandleMessage(g.Peers()[0], beaconShare(1, 2), 0)); got != len(g.Peers())-1 {
		t.Fatalf("idle share relayed to %d peers, want immediate fanout %d", got, len(g.Peers())-1)
	}
	// A share close on its heels sees the party busy: batched.
	if got := relayed(g.HandleMessage(g.Peers()[0], beaconShare(1, 3), time.Millisecond)); got != 0 {
		t.Fatalf("burst share relayed immediately (%d frames)", got)
	}
	if got := relayed(g.HandleMessage(g.Peers()[0], beaconShare(1, 4), 2*time.Millisecond)); got != 0 {
		t.Fatal("burst share relayed immediately")
	}
	// The batch timer must be armed while shares are pending.
	wake, ok := g.NextWake(2 * time.Millisecond)
	if !ok || wake != time.Millisecond+window {
		t.Fatalf("NextWake = %v, %v; want flush at %v", wake, ok, time.Millisecond+window)
	}
	// The window close flushes the batch as bundles.
	if got := countKind[*types.ShareBundle](g.Tick(wake)); got == 0 {
		t.Fatal("window close flushed no bundles")
	}
	// No pending shares: no timer armed (the adaptive mode's whole
	// point — an idle party wakes for nothing).
	if _, ok := g.NextWake(wake); ok {
		t.Fatal("timer armed with empty batch queue")
	}
	// After a long idle stretch the next share is immediate again.
	if got := relayed(g.HandleMessage(g.Peers()[0], beaconShare(2, 2), 100*time.Millisecond)); got != len(g.Peers())-1 {
		t.Fatalf("post-idle share relayed to %d peers, want immediate fanout", got)
	}
}

func TestFixedBatchWindowStillDelays(t *testing.T) {
	// Without AdaptiveBatch the first share waits for the window — the
	// pre-existing behaviour the adaptive mode improves on.
	inner := &sink{id: 0}
	g := Wrap(Config{Self: 0, N: 7, Fanout: 3, Seed: 1, ShareBatchWindow: 10 * time.Millisecond}, inner)
	outs := g.HandleMessage(g.Peers()[0], beaconShare(1, 2), 0)
	if got := countKind[*types.BeaconShare](outs); got != 0 {
		t.Fatalf("fixed-window share relayed immediately (%d frames)", got)
	}
	if _, ok := g.NextWake(0); !ok {
		t.Fatal("fixed window armed no flush timer")
	}
}
