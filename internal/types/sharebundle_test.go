package types

import (
	"bytes"
	"testing"

	"icc/internal/crypto/hash"
)

func sampleShareBundle() *ShareBundle {
	h1 := hash.Digest{1, 2, 3}
	h2 := hash.Digest{4, 5, 6}
	return &ShareBundle{
		Notar: []ShareGroup{
			{Round: 7, Proposer: 2, BlockHash: h1,
				Signers: []PartyID{0, 1, 3}, Sigs: [][]byte{{0xa}, {0xb, 0xb}, {0xc}}},
			{Round: 7, Proposer: 5, BlockHash: h2,
				Signers: []PartyID{2}, Sigs: [][]byte{make([]byte, 64)}},
		},
		Final: []ShareGroup{
			{Round: 6, Proposer: 1, BlockHash: h2,
				Signers: []PartyID{0, 4}, Sigs: [][]byte{{0xd}, {0xe}}},
		},
		Beacon: []*BeaconShare{
			{Round: 8, Signer: 0, Share: []byte{1, 2, 3, 4}},
			{Round: 8, Signer: 3, Share: []byte{5}},
		},
	}
}

func TestShareBundleRoundTrip(t *testing.T) {
	in := sampleShareBundle()
	enc := Marshal(in)
	out, err := Unmarshal(enc)
	if err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	sb, ok := out.(*ShareBundle)
	if !ok {
		t.Fatalf("decoded %T, want *ShareBundle", out)
	}
	if !bytes.Equal(Marshal(sb), enc) {
		t.Fatal("re-encoding differs")
	}
	if sb.Shares() != in.Shares() {
		t.Fatalf("share count %d, want %d", sb.Shares(), in.Shares())
	}
}

func TestShareBundleWireSizeExact(t *testing.T) {
	cases := []*ShareBundle{
		{},
		{Beacon: []*BeaconShare{{Round: 1, Signer: 2, Share: []byte{9, 9}}}},
		sampleShareBundle(),
	}
	for i, b := range cases {
		if got, want := b.WireSize(), len(Marshal(b)); got != want {
			t.Errorf("case %d: WireSize %d, Marshal produced %d bytes", i, got, want)
		}
	}
}

func TestShareBundleExpand(t *testing.T) {
	b := sampleShareBundle()
	msgs := b.Expand()
	if len(msgs) != b.Shares() {
		t.Fatalf("expanded %d messages, want %d", len(msgs), b.Shares())
	}
	var notar, final, beacon int
	for _, m := range msgs {
		switch v := m.(type) {
		case *NotarizationShare:
			notar++
			if v.Round != 7 {
				t.Fatalf("notarization share round %d", v.Round)
			}
		case *FinalizationShare:
			final++
		case *BeaconShare:
			beacon++
		default:
			t.Fatalf("unexpected expanded kind %T", m)
		}
	}
	if notar != 4 || final != 2 || beacon != 2 {
		t.Fatalf("expanded %d/%d/%d notar/final/beacon, want 4/2/2", notar, final, beacon)
	}
	// Expanded shares must be individually marshalable and survive a
	// round trip (they re-enter pools as first-class artifacts).
	for _, m := range msgs {
		if _, err := Unmarshal(Marshal(m)); err != nil {
			t.Fatalf("expanded share does not round-trip: %v", err)
		}
	}
}

func TestShareBundleDecodeTruncated(t *testing.T) {
	enc := Marshal(sampleShareBundle())
	for cut := 1; cut < len(enc); cut++ {
		if _, err := Unmarshal(enc[:cut]); err == nil {
			t.Fatalf("truncation at %d bytes decoded without error", cut)
		}
	}
}

// FuzzShareBundle checks that arbitrary bytes never panic the decoder
// and that everything that decodes re-encodes byte-identically (the
// canonical-encoding property RefOf dedup depends on).
func FuzzShareBundle(f *testing.F) {
	f.Add(Marshal(sampleShareBundle()))
	f.Add(Marshal(&ShareBundle{}))
	f.Add([]byte{byte(KindShareBundle), 0, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Unmarshal(data)
		if err != nil {
			return
		}
		sb, ok := m.(*ShareBundle)
		if !ok {
			return
		}
		re := Marshal(sb)
		if !bytes.Equal(re, data) {
			t.Fatalf("decode/encode not canonical: %x -> %x", data, re)
		}
		if sb.WireSize() != len(re) {
			t.Fatalf("WireSize %d, encoding is %d bytes", sb.WireSize(), len(re))
		}
	})
}
