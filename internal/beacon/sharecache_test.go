package beacon

import (
	"bytes"
	"errors"
	"sync"
	"testing"

	"icc/internal/crypto/thresig"
	"icc/internal/types"
)

func TestShareForRoundCachesOwnShare(t *testing.T) {
	bs := cluster(t, 4)
	advance(t, bs, 1)
	first, err := bs[0].ShareForRound(2)
	if err != nil {
		t.Fatal(err)
	}
	again, err := bs[0].ShareForRound(2)
	if err != nil {
		t.Fatal(err)
	}
	// thresig.Sign draws fresh randomness, so identical bytes prove the
	// second call was served from the cache, not re-signed.
	if !bytes.Equal(first.Share, again.Share) {
		t.Fatal("repeated ShareForRound re-signed instead of serving the cache")
	}
	if bs[0].CachedShares() == 0 {
		t.Fatal("cache empty after ShareForRound")
	}
}

func TestCachedShareForRound(t *testing.T) {
	bs := cluster(t, 4)
	advance(t, bs, 1)
	if _, ok := bs[0].CachedShareForRound(2); ok {
		t.Fatal("cache hit before any signing")
	}
	signed, err := bs[0].ShareForRound(2)
	if err != nil {
		t.Fatal(err)
	}
	cached, ok := bs[0].CachedShareForRound(2)
	if !ok {
		t.Fatal("cache miss after ShareForRound")
	}
	if cached.Round != 2 || cached.Signer != bs[0].self || !bytes.Equal(cached.Share, signed.Share) {
		t.Fatal("cached share differs from signed share")
	}
}

func TestShareCacheEviction(t *testing.T) {
	bs := cluster(t, 4)
	bs[0].SetShareCacheSize(2)
	for k := types.Round(1); k <= 3; k++ {
		advance(t, bs, k)
		if _, err := bs[0].ShareForRound(k); err != nil {
			t.Fatal(err)
		}
	}
	if got := bs[0].CachedShares(); got != 2 {
		t.Fatalf("cache holds %d entries, capacity 2", got)
	}
	// Round 1 is least recently used and must have been evicted.
	if _, ok := bs[0].CachedShareForRound(1); ok {
		t.Fatal("LRU entry survived eviction")
	}
	if _, ok := bs[0].CachedShareForRound(3); !ok {
		t.Fatal("most recent entry evicted")
	}
}

func TestShareCacheDisabled(t *testing.T) {
	bs := cluster(t, 4)
	bs[0].SetShareCacheSize(-1)
	advance(t, bs, 1)
	if _, err := bs[0].ShareForRound(2); err != nil {
		t.Fatal(err)
	}
	if _, ok := bs[0].CachedShareForRound(2); ok {
		t.Fatal("disabled cache returned a hit")
	}
	if got := bs[0].CachedShares(); got != 0 {
		t.Fatalf("disabled cache holds %d entries", got)
	}
}

func TestPruneReturnsErrPruned(t *testing.T) {
	bs := cluster(t, 4)
	for k := types.Round(1); k <= 3; k++ {
		advance(t, bs, k)
		if _, err := bs[0].ShareForRound(k); err != nil {
			t.Fatal(err)
		}
	}
	bs[0].Prune(3)
	if _, err := bs[0].ShareForRound(1); !errors.Is(err, ErrPruned) {
		t.Fatalf("share below watermark: got %v, want ErrPruned", err)
	}
	if _, ok := bs[0].CachedShareForRound(2); ok {
		t.Fatal("cache hit below prune watermark")
	}
	// At and above the watermark signing still works.
	if _, err := bs[0].ShareForRound(3); err != nil {
		t.Fatalf("share at watermark: %v", err)
	}
	if _, err := bs[0].ShareForRound(4); err != nil {
		t.Fatalf("share after prune: %v", err)
	}
}

func TestSimulatedPruneReturnsErrPruned(t *testing.T) {
	s := NewSimulated(4, 0, []byte("genesis"))
	if _, err := s.ShareForRound(1); err != nil {
		t.Fatal(err)
	}
	s.Prune(2)
	if _, err := s.ShareForRound(1); !errors.Is(err, ErrPruned) {
		t.Fatalf("simulated share below watermark: got %v, want ErrPruned", err)
	}
	if _, ok := s.CachedShareForRound(1); ok {
		t.Fatal("simulated cache hit below prune watermark")
	}
}

func TestSimulatedShareCache(t *testing.T) {
	s := NewSimulated(4, 2, []byte("genesis"))
	if _, ok := s.CachedShareForRound(1); ok {
		t.Fatal("cache hit before signing")
	}
	sh, err := s.ShareForRound(1)
	if err != nil {
		t.Fatal(err)
	}
	cached, ok := s.CachedShareForRound(1)
	if !ok || cached.Round != sh.Round || cached.Signer != 2 {
		t.Fatal("simulated cache miss after ShareForRound")
	}
	s.SetShareCacheSize(-1)
	if _, ok := s.CachedShareForRound(1); ok {
		t.Fatal("hit after cache disabled")
	}
}

func TestCachedShareIsDefensiveCopy(t *testing.T) {
	bs := cluster(t, 4)
	first, err := bs[0].ShareForRound(1)
	if err != nil {
		t.Fatal(err)
	}
	first.Signer = 99 // caller mutation must not corrupt the cache
	again, err := bs[0].ShareForRound(1)
	if err != nil {
		t.Fatal(err)
	}
	if again.Signer != bs[0].self {
		t.Fatal("caller mutation leaked into the cache")
	}
}

// TestBeaconConcurrentAccess exercises the beacon from an engine-like
// goroutine and a backfill-worker-like goroutine at once; run with -race.
func TestBeaconConcurrentAccess(t *testing.T) {
	bs := cluster(t, 4)
	b := bs[0]
	for k := types.Round(1); k <= 8; k++ {
		advance(t, bs, k)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				k := types.Round(i%8 + 1)
				if seed%2 == 0 {
					if _, err := b.ShareForRound(k); err != nil {
						t.Errorf("ShareForRound(%d): %v", k, err)
						return
					}
				} else {
					b.CachedShareForRound(k)
					b.Digest(k)
					b.Leader(k)
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestSimulatedConcurrentAccess(t *testing.T) {
	s := NewSimulated(4, 0, []byte("genesis"))
	fill := func(k types.Round) {
		for p := types.PartyID(0); p < 4; p++ {
			_, _ = s.AddShare(&types.BeaconShare{Round: k, Signer: p, Share: make([]byte, thresig.SigShareLen)})
		}
		s.Reveal(k)
	}
	for k := types.Round(1); k <= 8; k++ {
		fill(k)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				k := types.Round(i%8 + 1)
				switch seed % 3 {
				case 0:
					_, _ = s.ShareForRound(k)
				case 1:
					s.CachedShareForRound(k)
					s.Have(k)
				default:
					s.Permutation(k)
					s.ShareCount(k)
				}
			}
		}(w)
	}
	wg.Wait()
}
