package experiments

import (
	"fmt"
	"time"

	"icc/internal/core"
	"icc/internal/harness"
	"icc/internal/pool"
	"icc/internal/simnet"
	"icc/internal/types"
)

// Dissemination reproduces the block-dissemination comparison
// (experiment E7): for growing block size S, the per-party egress of
// ICC0 (direct broadcast: proposer pays n·S), ICC1 (gossip: proposer
// pays fanout·S, relays share the rest), and ICC2 (erasure-coded RBC:
// every party pays ≈ S·n/(n−2t) = O(S)). The paper's claim: with
// S = Ω(nλ log n), ICC2 transmits O(S) bits per party per round, and
// both ICC1 and ICC2 remove the leader bottleneck that [35] measured.
func Dissemination(scale Scale) *Table {
	const n = 13
	tf := types.MaxFaults(n)
	t := &Table{
		ID:    "E7",
		Title: fmt.Sprintf("per-round bytes vs block size S (n=%d, t=%d, reconstruction threshold n−2t=%d)", n, tf, n-2*tf),
		Columns: []string{"S", "variant", "max party MB/round", "mean party MB/round",
			"max/S", "mean/S"},
		Notes: []string{
			"max party ≈ the leader bottleneck of [35]; ICC0 grows as n·S at the proposer",
			"ICC2 mean ≈ S·n/(n−2t) ≈ 2.6·S here, evenly spread — the paper's O(S) per-party bound",
		},
	}
	blocks := scale.scaleInt(20)
	for _, size := range []int{16 << 10, 64 << 10, 256 << 10, 1 << 20} {
		for _, mode := range []harness.Mode{harness.ICC0, harness.ICC1, harness.ICC2} {
			c, err := harness.New(harness.Options{
				N:          n,
				Seed:       int64(7000 + size/1024),
				Delay:      simnet.Fixed{D: 10 * time.Millisecond},
				DeltaBound: 50 * time.Millisecond,
				Mode:       mode,
				Payload:    core.SizedPayload{Size: size},
				SimBeacon:  true,
				Verify:     pool.VerifySharesOnly,
				PruneDepth: simPruneDepth / 2,
			})
			if err != nil {
				panic(fmt.Sprintf("experiments: %v", err))
			}
			c.Start()
			c.RunUntilCommitted(blocks, time.Hour)
			s := c.Rec.Summarize()
			rounds := float64(s.CommittedBlocks)
			if rounds == 0 {
				rounds = 1
			}
			maxMB := float64(s.MaxPartyBytes) / rounds / (1 << 20)
			meanMB := float64(s.TotalBytes) / float64(n) / rounds / (1 << 20)
			sMB := float64(size) / (1 << 20)
			t.AddRow(byteSize(size), mode.String(),
				fmt.Sprintf("%.2f", maxMB), fmt.Sprintf("%.2f", meanMB),
				fmt.Sprintf("%.1f", maxMB/sMB), fmt.Sprintf("%.1f", meanMB/sMB))
		}
	}
	return t
}

func byteSize(v int) string {
	switch {
	case v >= 1<<20:
		return fmt.Sprintf("%dMiB", v>>20)
	case v >= 1<<10:
		return fmt.Sprintf("%dKiB", v>>10)
	default:
		return fmt.Sprintf("%dB", v)
	}
}

// AblationDelays reproduces the design-choice ablations (experiment E9):
// (a) the ε governor of eq. (2) — with ε = 0 the protocol runs "too
// fast", burning rounds (and signatures) for tiny payload batches; a
// non-zero ε trades block rate for fuller blocks at identical safety;
// (b) the adaptive-Δbnd variant — when real network delays far exceed a
// mis-configured Δbnd, racing proposals make rounds finish without a
// finalization (parties notarization-share several blocks, so N ⊄ {B}),
// and decisions arrive whole rounds late; the adaptive variant restores
// the liveness condition 2δ + Δprop(0) ≤ Δntry(1) by doubling its
// working bound and cuts the commit-latency tail. Throughput is NOT the
// metric here: property P1 keeps one block per round committing
// eventually either way — the tail latency is what degrades.
func AblationDelays(scale Scale) *Table {
	t := &Table{
		ID:      "E9",
		Title:   "ablations: ε governor (eq. 2) and adaptive Δbnd",
		Columns: []string{"configuration", "blocks/s", "mean round msgs", "round-finalized fraction", "p99 commit latency"},
	}
	window := time.Duration(scale.scaleInt(60)) * time.Second
	// (a) ε sweep, honest network δ=10ms.
	for _, eps := range []time.Duration{0, 100 * time.Millisecond, 500 * time.Millisecond} {
		c, err := harness.New(harness.Options{
			N:          7,
			Seed:       9001,
			Delay:      simnet.Fixed{D: 10 * time.Millisecond},
			DeltaBound: 50 * time.Millisecond,
			Epsilon:    eps,
			SimBeacon:  true,
			Verify:     pool.VerifySharesOnly,
			PruneDepth: simPruneDepth,
		})
		if err != nil {
			panic(fmt.Sprintf("experiments: %v", err))
		}
		c.Start()
		c.Net.Run(window)
		s := c.Rec.Summarize()
		g0, _ := finalizationStats(c)
		t.AddRow(fmt.Sprintf("ε=%v", eps),
			fmt.Sprintf("%.1f", float64(s.CommittedBlocks)/window.Seconds()),
			fmt.Sprintf("%.0f", s.MeanRoundMsgs),
			fmt.Sprintf("%.2f", g0),
			s.P99Latency.Round(time.Millisecond).String())
	}
	// (b) adaptive vs static with δ 4x the configured Δbnd and silent
	// leaders: the static run keeps multi-proposing and rarely
	// finalizes; the adaptive run doubles its working bound until the
	// liveness condition 2δ + Δprop(0) ≤ Δntry(1) holds again.
	for _, adaptive := range []bool{false, true} {
		c, err := harness.New(harness.Options{
			N:          7,
			Seed:       9002,
			Delay:      simnet.Uniform{Min: 40 * time.Millisecond, Max: 400 * time.Millisecond},
			DeltaBound: 20 * time.Millisecond, // mis-configured: δ up to 20×Δbnd
			Adaptive:   adaptive,
			SimBeacon:  true,
			Verify:     pool.VerifySharesOnly,
			PruneDepth: simPruneDepth,
		})
		if err != nil {
			panic(fmt.Sprintf("experiments: %v", err))
		}
		c.Start()
		c.Net.Run(2 * window)
		s := c.Rec.Summarize()
		g0, p99 := finalizationStats(c)
		name := "static Δbnd=20ms, δ∈[40,400]ms"
		if adaptive {
			name = "adaptive Δbnd (same setup)"
		}
		t.AddRow(name,
			fmt.Sprintf("%.1f", float64(s.CommittedBlocks)/(2*window).Seconds()),
			fmt.Sprintf("%.0f", s.MeanRoundMsgs),
			fmt.Sprintf("%.2f", g0),
			p99.Round(time.Millisecond).String())
	}
	return t
}

// finalizationStats returns the fraction of rounds finalized in their
// own round (gap 0) and the P99 commit latency, from the first honest
// party's commit log.
func finalizationStats(c *harness.Cluster) (gap0 float64, p99 time.Duration) {
	honest := c.HonestParties()
	seq := c.Committed(honest[0])
	at := c.CommittedAt(honest[0])
	total, g0 := 0, 0
	for i := 0; i < len(seq); {
		j := i
		for j+1 < len(seq) && at[j+1] == at[i] {
			j++
		}
		finalRound := seq[j].Round
		for k := i; k <= j; k++ {
			if finalRound == seq[k].Round {
				g0++
			}
			total++
		}
		i = j + 1
	}
	if total == 0 {
		return 0, 0
	}
	return float64(g0) / float64(total), c.Rec.Summarize().P99Latency
}
