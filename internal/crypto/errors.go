// Package crypto holds the sentinel errors shared by every signature
// scheme in the repository (sig, multisig, thresig), so that admission
// layers — the pool, the parallel verification pipeline — can classify a
// failure with errors.Is regardless of which scheme produced it, and so
// that reject metrics carry a stable reason label instead of a free-form
// message string.
package crypto

import "errors"

// Sentinel verification errors. Scheme packages wrap these with their
// own context; errors.Is(err, crypto.ErrBadSignature) therefore works on
// any verification failure in the repository.
var (
	// ErrBadSignature: an ordinary (ed25519) signature failed to verify —
	// a block authenticator, or the signature inside a multisig share.
	ErrBadSignature = errors.New("crypto: invalid signature")
	// ErrBadShare: a threshold/multisig signature share failed to verify
	// (bad signer index, malformed encoding, or invalid signature/proof).
	ErrBadShare = errors.New("crypto: invalid signature share")
	// ErrBadAggregate: a combined quorum signature failed to verify
	// (too few signers, malformed signer list, or an invalid member).
	ErrBadAggregate = errors.New("crypto: invalid aggregate signature")
)

// Reject-reason labels for the icc_verify_rejects_total metric family.
// Reason maps any error onto this closed set.
const (
	ReasonBadSignature = "bad_signature"
	ReasonBadShare     = "bad_share"
	ReasonBadAggregate = "bad_aggregate"
	ReasonMismatch     = "mismatch"
	ReasonMalformed    = "malformed"
)

// Mismatch tags errors from structural admission checks: an artifact
// whose claimed (round, proposer) contradicts a block already held.
// Defined here (not in the pool) so reason classification has one home.
var Mismatch = errors.New("crypto: artifact contradicts stored block")

// Reason classifies a verification error into a metric label. Unknown
// errors classify as malformed — the artifact never reached a signature
// check.
func Reason(err error) string {
	switch {
	case errors.Is(err, ErrBadAggregate):
		return ReasonBadAggregate
	case errors.Is(err, ErrBadShare):
		return ReasonBadShare
	case errors.Is(err, ErrBadSignature):
		return ReasonBadSignature
	case errors.Is(err, Mismatch):
		return ReasonMismatch
	default:
		return ReasonMalformed
	}
}
