package runtime

import (
	"errors"
	"sync"
	"testing"
	"time"

	"icc/internal/clock"
	"icc/internal/engine"
	"icc/internal/metrics"
	"icc/internal/transport"
	"icc/internal/types"
)

// pingEngine broadcasts one message at Init, counts receipts, and asks
// for a tick shortly after start.
type pingEngine struct {
	mu       sync.Mutex
	id       types.PartyID
	received int
	ticks    int
	wakeAt   time.Duration
	woken    bool
}

func (p *pingEngine) ID() types.PartyID { return p.id }

func (p *pingEngine) Init(now time.Duration) []engine.Output {
	return []engine.Output{engine.Broadcast(&types.BeaconShare{Round: 1, Signer: p.id, Share: []byte{byte(p.id)}})}
}

func (p *pingEngine) HandleMessage(_ types.PartyID, _ types.Message, _ time.Duration) []engine.Output {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.received++
	return nil
}

func (p *pingEngine) Tick(now time.Duration) []engine.Output {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.ticks++
	p.woken = true
	return nil
}

func (p *pingEngine) NextWake(now time.Duration) (time.Duration, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.woken {
		return 0, false
	}
	return p.wakeAt, true
}

func (p *pingEngine) CurrentRound() types.Round { return 1 }

func (p *pingEngine) snapshot() (int, int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.received, p.ticks
}

func TestRunnersExchangeMessages(t *testing.T) {
	const n = 3
	hub := transport.NewInproc(n)
	defer hub.Close()
	clk := clock.NewWall()
	engines := make([]*pingEngine, n)
	runners := make([]*Runner, n)
	for i := 0; i < n; i++ {
		engines[i] = &pingEngine{id: types.PartyID(i), wakeAt: 20 * time.Millisecond}
		runners[i] = NewRunner(engines[i], hub.Endpoint(types.PartyID(i)), clk, n)
		runners[i].Start()
	}
	defer func() {
		for _, r := range runners {
			r.Stop()
		}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		ok := true
		for _, e := range engines {
			recv, ticks := e.snapshot()
			if recv != n-1 || ticks == 0 {
				ok = false
				break
			}
		}
		if ok {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	for i, e := range engines {
		recv, ticks := e.snapshot()
		t.Logf("engine %d: received %d, ticks %d", i, recv, ticks)
	}
	t.Fatal("runners did not exchange messages and tick")
}

// failingEndpoint wraps an Endpoint, failing every send to one party.
type failingEndpoint struct {
	transport.Endpoint
	failTo types.PartyID
}

func (f *failingEndpoint) Send(to types.PartyID, m types.Message) error {
	if to == f.failTo {
		return errors.New("injected send failure")
	}
	return f.Endpoint.Send(to, m)
}

// TestBroadcastContinuesPastFailingPeer is the regression test for
// runner.send's error handling: a failed send to one peer must not stop
// the broadcast reaching the remaining peers, and the failure must be
// counted rather than silently swallowed.
func TestBroadcastContinuesPastFailingPeer(t *testing.T) {
	const n = 4
	hub := transport.NewInproc(n)
	defer hub.Close()
	stats := metrics.NewTransportStats()
	clk := clock.NewWall()
	engines := make([]*pingEngine, n)
	runners := make([]*Runner, n)
	for i := 0; i < n; i++ {
		engines[i] = &pingEngine{id: types.PartyID(i), wakeAt: time.Hour, woken: true}
		var ep transport.Endpoint = hub.Endpoint(types.PartyID(i))
		if i == 0 {
			// Party 0 cannot reach party 2 at all.
			ep = &failingEndpoint{Endpoint: ep, failTo: 2}
		}
		runners[i] = NewRunner(engines[i], ep, clk, n)
		runners[i].SetTransportStats(stats)
		runners[i].Start()
	}
	defer func() {
		for _, r := range runners {
			r.Stop()
		}
	}()
	// Party 0's Init broadcast must still reach parties 1 and 3; with
	// everyone broadcasting once, party 2 receives only n-2 messages.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		r1, _ := engines[1].snapshot()
		r2, _ := engines[2].snapshot()
		r3, _ := engines[3].snapshot()
		if r1 == n-1 && r3 == n-1 && r2 == n-2 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if r1, _ := engines[1].snapshot(); r1 != n-1 {
		t.Fatalf("party 1 received %d of %d broadcasts", r1, n-1)
	}
	if r3, _ := engines[3].snapshot(); r3 != n-1 {
		t.Fatalf("party 3 received %d of %d broadcasts", r3, n-1)
	}
	if r2, _ := engines[2].snapshot(); r2 != n-2 {
		t.Fatalf("party 2 received %d, want %d (only the failing link is cut)", r2, n-2)
	}
	if snap := stats.Detail(); snap.SendErrors != 1 {
		t.Fatalf("send errors = %d, want exactly 1 (party 0's broadcast to party 2)", snap.SendErrors)
	}
}

func TestStopIsIdempotentAndTerminates(t *testing.T) {
	hub := transport.NewInproc(1)
	defer hub.Close()
	e := &pingEngine{id: 0, wakeAt: time.Hour}
	r := NewRunner(e, hub.Endpoint(0), clock.NewWall(), 1)
	r.Start()
	done := make(chan struct{})
	go func() {
		r.Stop()
		r.Stop()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Stop hung")
	}
}

func TestRunnerExitsWhenInboxCloses(t *testing.T) {
	hub := transport.NewInproc(1)
	e := &pingEngine{id: 0, wakeAt: time.Hour}
	r := NewRunner(e, hub.Endpoint(0), clock.NewWall(), 1)
	r.Start()
	hub.Close() // closes the inbox channel
	done := make(chan struct{})
	go func() {
		r.Stop() // must return promptly because the loop already exited
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("runner did not exit on closed inbox")
	}
}
