package baseline

import (
	"sync"
	"testing"
	"time"

	"icc/internal/simnet"
	"icc/internal/types"
)

func runPBFT(t *testing.T, n int, delta, bound time.Duration, cfg func(i int, c *PBFTConfig), crash []types.PartyID, until time.Duration) *commitLog {
	t.Helper()
	nw := simnet.New(simnet.Options{Seed: 9, Delay: simnet.Fixed{D: delta}})
	log := newCommitLog(n)
	for i := 0; i < n; i++ {
		c := PBFTConfig{
			Self: types.PartyID(i), N: n,
			DeltaBound: bound,
			OnCommit:   log.record(i),
		}
		if cfg != nil {
			cfg(i, &c)
		}
		nw.AddNode(NewPBFT(c), true)
	}
	for _, p := range crash {
		nw.Crash(p)
	}
	nw.Start()
	nw.Run(until)
	return log
}

func TestPBFTCommitsInOrder(t *testing.T) {
	log := runPBFT(t, 4, 10*time.Millisecond, 100*time.Millisecond, nil, nil, 3*time.Second)
	log.checkConsistent(t)
	if log.min() < 20 {
		t.Fatalf("only %d commits in 3s", log.min())
	}
	// Sequences strictly increasing by one.
	log.mu.Lock()
	defer log.mu.Unlock()
	for i, v := range log.seqs[0] {
		if v != uint64(i+1) {
			t.Fatalf("sequence %d at position %d", v, i)
		}
	}
}

func TestPBFTViewChangeOnCrashedLeader(t *testing.T) {
	// Leader of view 0 is party 0; crash it. The cluster must view-change
	// and resume under leader 1.
	log := runPBFT(t, 4, 10*time.Millisecond, 50*time.Millisecond, nil,
		[]types.PartyID{0}, 5*time.Second)
	// Party 0 is crashed; the others must have committed.
	log.mu.Lock()
	defer log.mu.Unlock()
	for p := 1; p < 4; p++ {
		if len(log.seqs[p]) < 10 {
			t.Fatalf("party %d committed only %d after leader crash", p, len(log.seqs[p]))
		}
	}
}

// TestPBFTSlowLeaderAttack reproduces the fragility result of [15] that
// the paper's "Robust consensus" discussion builds on: a leader that
// proposes just inside the view-change timeout is never replaced, and
// throughput collapses to ≈ one batch per timeout instead of one per
// ≈3δ — while remaining "live" in the technical sense.
func TestPBFTSlowLeaderAttack(t *testing.T) {
	const delta = 10 * time.Millisecond
	const bound = 50 * time.Millisecond
	honest := runPBFT(t, 4, delta, bound, nil, nil, 5*time.Second)
	slow := runPBFT(t, 4, delta, bound, func(i int, c *PBFTConfig) {
		if i == 0 { // the stable leader
			c.ProposeDelay = 150 * time.Millisecond // just under the 200ms timeout
		}
	}, nil, 5*time.Second)
	h, s := honest.min(), slow.min()
	if s == 0 {
		t.Fatal("slow leader triggered view change — attack should stay under the timeout")
	}
	if float64(s) > 0.3*float64(h) {
		t.Fatalf("slow-leader attack ineffective: %d vs %d commits", s, h)
	}
	t.Logf("PBFT throughput: honest %d commits, slow-leader %d commits (%.0f%%)", h, s, 100*float64(s)/float64(h))
}

func TestPBFTLatencyIs3Delta(t *testing.T) {
	const delta = 10 * time.Millisecond
	nw := simnet.New(simnet.Options{Seed: 10, Delay: simnet.Fixed{D: delta}})
	var mu sync.Mutex
	commitAt := map[uint64]time.Duration{}
	const n = 4
	log := newCommitLog(n)
	for i := 0; i < n; i++ {
		i := i
		nw.AddNode(NewPBFT(PBFTConfig{
			Self: types.PartyID(i), N: n, DeltaBound: 100 * time.Millisecond,
			OnCommit: func(seq uint64, pl []byte, now time.Duration) {
				mu.Lock()
				if _, ok := commitAt[seq]; !ok {
					commitAt[seq] = now
				}
				mu.Unlock()
				log.record(i)(seq, pl, now)
			},
		}), true)
	}
	nw.Start()
	nw.Run(2 * time.Second)
	mu.Lock()
	defer mu.Unlock()
	if len(commitAt) < 10 {
		t.Fatalf("%d commits", len(commitAt))
	}
	// Steady state: pre-prepare for seq s goes out when s−1 executes at
	// the leader; commit of s lands ≈3δ later. Gap between consecutive
	// commits ≈ 3δ (the un-pipelined PBFT reciprocal throughput).
	gap := (commitAt[10] - commitAt[5]) / 5
	if gap < 2*delta || gap > 4*delta {
		t.Fatalf("inter-commit gap %v, want ≈3δ = %v", gap, 3*delta)
	}
}
