// Package aggsig defines the pluggable aggregate-signature interface
// behind the protocol's quorum certificates. The ICC paper (§2.3) lists
// three ways to instantiate the (t, h, n) threshold instances S_notary
// and S_final: (i)/(ii) a multi-signature of ordinary signatures — the
// repository's original, and still default, scheme — and (iii) compact
// aggregate signatures such as BLS, which the paper's §1.1 O(n)
// communication claim assumes. This package is the seam between those
// choices and every layer that handles certificates: the pool, the
// verification pipeline, relay-side gossip aggregation, checkpointing,
// and the wire codec.
//
// A Certificate is a signer set plus a scheme-specific proof; its
// encoding is tagged with a leading scheme byte so a verifier configured
// for one scheme deterministically rejects artifacts produced under
// another (no panics, no silent misverification — see Scheme.Decode).
package aggsig

import (
	"fmt"

	"icc/internal/crypto"
	"icc/internal/crypto/hash"
)

// SchemeID identifies an aggregate-signature scheme on the wire: it is
// the first byte of every encoded certificate.
type SchemeID uint8

// Registered schemes.
const (
	// SchemeMultisig is the concatenation-of-ed25519 multi-signature
	// (paper §2.3 approach (i)/(ii)); certificate size grows ~66 B per
	// signer. The repository default.
	SchemeMultisig SchemeID = 1
	// SchemeBLS is the BLS12-381 aggregate signature (approach (iii)):
	// one G1 point regardless of signer count, plus a signer bitmap.
	SchemeBLS SchemeID = 2
)

// String implements fmt.Stringer with the names the -cert-scheme flag
// accepts.
func (id SchemeID) String() string {
	switch id {
	case SchemeMultisig:
		return "multisig"
	case SchemeBLS:
		return "bls"
	default:
		return fmt.Sprintf("scheme(%d)", uint8(id))
	}
}

// ParseSchemeID resolves a -cert-scheme flag value.
func ParseSchemeID(name string) (SchemeID, error) {
	switch name {
	case "multisig", "":
		return SchemeMultisig, nil
	case "bls":
		return SchemeBLS, nil
	default:
		return 0, fmt.Errorf("aggsig: unknown certificate scheme %q (want multisig or bls)", name)
	}
}

// Share is one party's signature share on a message. The Signature
// bytes are scheme-specific: an ed25519 signature under multisig, an
// encoded G1 point under BLS. Shares travel individually (and inside
// ShareBundle frames) exactly as before — only the combined certificate
// changed shape.
type Share struct {
	Signer    int
	Signature []byte
}

// Certificate is a combined quorum signature: the set of signers that
// contributed, plus a scheme-specific proof. Implementations are
// produced by their Scheme's Combine/CombineVerified/Decode and verified
// by the same Scheme's Verify — feeding a certificate to a different
// scheme fails with ErrBadAggregate.
type Certificate interface {
	// Scheme names the implementation, matching the encoding's tag byte.
	Scheme() SchemeID
	// SignerIDs returns the contributing signers, sorted ascending.
	SignerIDs() []int
	// Encode serialises the certificate, leading scheme tag included.
	Encode() []byte
}

// Scheme is the verification side of one aggregate-signature instance:
// the per-party keys, the quorum an admissible certificate must reach,
// and the combine/verify/decode algorithms. Implementations:
// multisig.PublicInfo and BLSInfo.
type Scheme interface {
	// ID names the scheme (and the tag its certificates carry).
	ID() SchemeID
	// Parties returns n, the number of registered signers.
	Parties() int
	// Quorum returns h, the number of distinct signers a certificate
	// must carry to verify.
	Quorum() int
	// WithQuorum derives an instance over the same keys with a different
	// quorum — the checkpoint certificate re-uses the S_final keys at
	// t+1 instead of n−t.
	WithQuorum(q int) Scheme

	// VerifyShare checks one share against the registered key of its
	// signer.
	VerifyShare(domain hash.Domain, msg []byte, s *Share) error
	// Combine verifies the supplied shares and, given at least Quorum
	// distinct valid ones, outputs a certificate. Invalid and duplicate
	// shares are skipped.
	Combine(domain hash.Domain, msg []byte, shares []*Share) (Certificate, error)
	// CombineVerified aggregates shares the caller has already verified
	// (pool admission or the verification pipeline), skipping the
	// per-share check. Duplicates and out-of-range signers are still
	// dropped.
	CombineVerified(shares []*Share) (Certificate, error)
	// Verify checks a certificate produced by this scheme. A
	// certificate from a different scheme fails with ErrBadAggregate.
	Verify(domain hash.Domain, msg []byte, c Certificate) error
	// Decode parses an encoded certificate, rejecting artifacts whose
	// tag names a different scheme with ErrBadAggregate.
	Decode(b []byte) (Certificate, error)
}

// Signer is the signing side: one party's secret key for the instance.
// Implementations: multisig.SecretKey and BLSSecretKey.
type Signer interface {
	// Sign produces this party's share on the domain-tagged message.
	Sign(domain hash.Domain, msg []byte) *Share
}

// CheckTag validates the leading scheme byte of an encoded certificate
// against the decoding scheme and returns the body. Scheme
// implementations call it first in Decode, so cross-scheme artifacts are
// rejected uniformly with ErrBadAggregate before any scheme-specific
// parsing runs.
func CheckTag(b []byte, want SchemeID) ([]byte, error) {
	if len(b) < 1 {
		return nil, fmt.Errorf("%w: empty certificate", crypto.ErrBadAggregate)
	}
	if got := SchemeID(b[0]); got != want {
		return nil, fmt.Errorf("%w: certificate scheme %s, verifier configured for %s",
			crypto.ErrBadAggregate, got, want)
	}
	return b[1:], nil
}
