package obs

import (
	"strconv"
	"sync"
	"time"
)

// HealthTracker derives liveness from commit recency: a consensus node
// that has stopped committing is stalled no matter how healthy its
// process looks. Shared across observers when several parties report
// into one health signal (the in-process facade cluster).
type HealthTracker struct {
	mu      sync.Mutex
	created time.Time
	last    time.Time
	commits uint64
}

// NewHealthTracker starts the clock: until the first commit, age is
// measured from creation.
func NewHealthTracker() *HealthTracker {
	return &HealthTracker{created: time.Now()}
}

// Touch records one commit. Safe on nil.
func (h *HealthTracker) Touch() {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.last = time.Now()
	h.commits++
	h.mu.Unlock()
}

// Health is the /healthz payload.
type Health struct {
	Stalled              bool    `json:"stalled"`
	Commits              uint64  `json:"commits"`
	LastCommitAgeSeconds float64 `json:"last_commit_age_seconds"`
	StallAfterSeconds    float64 `json:"stall_after_seconds"`
}

// Health evaluates the stall condition: more than stallAfter since the
// last commit (or since creation, before the first commit).
func (h *HealthTracker) Health(stallAfter time.Duration) Health {
	if h == nil {
		return Health{}
	}
	h.mu.Lock()
	last := h.last
	if last.IsZero() {
		last = h.created
	}
	commits := h.commits
	h.mu.Unlock()
	age := time.Since(last)
	return Health{
		Stalled:              stallAfter > 0 && age > stallAfter,
		Commits:              commits,
		LastCommitAgeSeconds: age.Seconds(),
		StallAfterSeconds:    stallAfter.Seconds(),
	}
}

// ObserverConfig assembles an Observer. Zero-value fields get defaults.
type ObserverConfig struct {
	// Registry receives the instruments (nil → a fresh private registry).
	// Several observers may share one registry: families are registered
	// idempotently and their counters aggregate across parties.
	Registry *Registry
	// Tracer receives protocol events (nil → a fresh DefaultTraceCap ring).
	Tracer *Tracer
	// Party stamps trace events with the recording party.
	Party int
	// Health receives commit heartbeats (nil → a fresh private tracker).
	Health *HealthTracker
}

// Observer is one party's view onto the obs substrate: the standard
// consensus instrument set, registered on a (possibly shared) registry,
// plus trace emission and commit-recency health. Its methods mirror the
// core engine's per-phase hooks (see core.ObservedHooks) and the runtime
// event loop. All methods are safe on a nil *Observer, so instrumented
// code records unconditionally.
type Observer struct {
	Registry *Registry
	Tracer   *Tracer
	HealthT  *HealthTracker

	party int

	roundsEntered  *Counter
	roundsDone     *Counter
	proposals      *Counter
	notarShares    *Counter
	finalShares    *Counter
	commits        *Counter
	commitBytes    *Counter
	resyncs        *Counter
	backfills      *Counter
	backfillInline *Counter
	backfillDefer  *Counter
	msgsReceived   *Counter
	ticks          *Counter
	ranksDisq      *Counter
	rejects        *CounterVec
	ckptCreated    *Counter
	ckptInstalled  *Counter
	ckptServed     *Counter
	resyncLost     *Counter
	currentRound   *Gauge
	finalizedRound *Gauge

	beaconWait      *Histogram
	roundDuration   *Histogram
	commitLatency   *Histogram
	notarShareDelay *Histogram
	finalShareDelay *Histogram

	mu      sync.Mutex
	enterAt map[uint64]time.Duration // round → protocol time it was entered
}

// enterAtCap bounds the per-round entry-time map; rounds that never
// commit (we were partitioned and caught up past them) must not leak.
const enterAtCap = 4096

// NewObserver builds an observer and registers the standard instrument
// set on cfg.Registry.
func NewObserver(cfg ObserverConfig) *Observer {
	reg := cfg.Registry
	if reg == nil {
		reg = NewRegistry()
	}
	tr := cfg.Tracer
	if tr == nil {
		tr = NewTracer(0)
	}
	ht := cfg.Health
	if ht == nil {
		ht = NewHealthTracker()
	}
	o := &Observer{
		Registry: reg,
		Tracer:   tr,
		HealthT:  ht,
		party:    cfg.Party,
		enterAt:  make(map[uint64]time.Duration),

		roundsEntered:  reg.Counter("icc_rounds_entered_total", "Rounds this node has entered (beacon revealed)."),
		roundsDone:     reg.Counter("icc_rounds_notarized_total", "Rounds finished with a notarized block."),
		proposals:      reg.Counter("icc_proposals_total", "Block proposals broadcast by this node."),
		notarShares:    reg.Counter("icc_notarization_shares_total", "Notarization shares issued by this node."),
		finalShares:    reg.Counter("icc_finalization_shares_total", "Finalization shares issued by this node."),
		commits:        reg.Counter("icc_blocks_committed_total", "Blocks output by the finalization subprotocol."),
		commitBytes:    reg.Counter("icc_committed_payload_bytes_total", "Payload bytes across committed blocks."),
		resyncs:        reg.Counter("icc_resyncs_total", "Stall-triggered resynchronisation broadcasts."),
		backfills:      reg.Counter("icc_resync_backfill_responses_total", "Catch-up responses sent to lagging peers."),
		backfillInline: reg.Counter("icc_resync_backfill_shares_inline_total", "Catch-up beacon shares answered inline (cache hit or synchronous signing)."),
		backfillDefer:  reg.Counter("icc_resync_backfill_rounds_deferred_total", "Catch-up share rounds handed to the async backfill worker."),
		msgsReceived:   reg.Counter("icc_runtime_messages_received_total", "Messages delivered to the engine event loop."),
		ticks:          reg.Counter("icc_runtime_ticks_total", "Timer ticks delivered to the engine event loop."),
		ranksDisq:      reg.Counter("icc_ranks_disqualified_total", "Proposer ranks disqualified for equivocation (Fig. 1 clause (c))."),
		rejects:        reg.CounterVec("icc_verify_rejects_total", "Inbound artifacts rejected at admission, by reason.", "reason"),
		ckptCreated:    reg.Counter("icc_checkpoint_created_total", "Certified checkpoints this node assembled (own share plus t matching peer shares)."),
		ckptInstalled:  reg.Counter("icc_checkpoint_installed_total", "Certified checkpoints installed from peers (behind-horizon restores)."),
		ckptServed:     reg.Counter("icc_checkpoint_served_total", "Checkpoint transfers offered to peers stuck behind the prune horizon."),
		resyncLost:     reg.Counter("icc_resync_lost_total", "Times this node detected an unrecoverable lag (gap beyond the prune horizon with no checkpoint path)."),
		currentRound:   reg.Gauge("icc_current_round", "Round the engine is currently working on."),
		finalizedRound: reg.Gauge("icc_finalized_round", "Highest round this node has committed."),

		beaconWait:      reg.Histogram("icc_beacon_wait_seconds", "Wait for a round's beacon to become available.", nil),
		roundDuration:   reg.Histogram("icc_round_duration_seconds", "Round entry to notarized completion.", nil),
		commitLatency:   reg.Histogram("icc_commit_latency_seconds", "Round entry to commit of that round's block.", nil),
		notarShareDelay: reg.Histogram("icc_notarization_share_delay_seconds", "Round entry to this node's notarization share.", nil),
		finalShareDelay: reg.Histogram("icc_finalization_share_delay_seconds", "Round entry to this node's finalization share.", nil),
	}
	return o
}

// trace records one event stamped with this observer's party.
func (o *Observer) trace(kind string, round uint64, detail string) {
	o.Tracer.Record(Event{Party: o.party, Kind: kind, Round: round, Detail: detail})
}

// sinceEnter returns now − enter-time of round k, if known.
func (o *Observer) sinceEnter(k uint64, now time.Duration) (time.Duration, bool) {
	o.mu.Lock()
	at, ok := o.enterAt[k]
	o.mu.Unlock()
	if !ok || now < at {
		return 0, false
	}
	return now - at, true
}

// BeaconRecovered records the wait for round k's beacon.
func (o *Observer) BeaconRecovered(k uint64, waited time.Duration) {
	if o == nil {
		return
	}
	o.beaconWait.Observe(waited.Seconds())
}

// EnterRound records round entry at protocol time now.
func (o *Observer) EnterRound(k uint64, now time.Duration) {
	if o == nil {
		return
	}
	o.roundsEntered.Inc()
	o.currentRound.SetMax(float64(k))
	o.mu.Lock()
	o.enterAt[k] = now
	if len(o.enterAt) > enterAtCap {
		for old := range o.enterAt {
			if old+enterAtCap/2 < k {
				delete(o.enterAt, old)
			}
		}
	}
	o.mu.Unlock()
	o.trace(KindRoundEntered, k, "")
}

// Propose records this node broadcasting its own proposal.
func (o *Observer) Propose(k uint64, now time.Duration) {
	if o == nil {
		return
	}
	o.proposals.Inc()
	o.trace(KindProposed, k, "")
}

// NotarizationShare records this node issuing a notarization share.
func (o *Observer) NotarizationShare(k uint64, now time.Duration) {
	if o == nil {
		return
	}
	o.notarShares.Inc()
	if d, ok := o.sinceEnter(k, now); ok {
		o.notarShareDelay.Observe(d.Seconds())
	}
	o.trace(KindNotarShare, k, "")
}

// FinalizationShare records this node issuing a finalization share.
func (o *Observer) FinalizationShare(k uint64, now time.Duration) {
	if o == nil {
		return
	}
	o.finalShares.Inc()
	if d, ok := o.sinceEnter(k, now); ok {
		o.finalShareDelay.Observe(d.Seconds())
	}
	o.trace(KindFinalShare, k, "")
}

// FinishRound records the round completing with a notarized block.
func (o *Observer) FinishRound(k uint64, now time.Duration) {
	if o == nil {
		return
	}
	o.roundsDone.Inc()
	if d, ok := o.sinceEnter(k, now); ok {
		o.roundDuration.Observe(d.Seconds())
	}
	o.trace(KindRoundNotarized, k, "")
}

// Commit records one block committed.
func (o *Observer) Commit(k uint64, payloadBytes int, now time.Duration) {
	if o == nil {
		return
	}
	o.commits.Inc()
	o.commitBytes.Add(int64(payloadBytes))
	o.finalizedRound.SetMax(float64(k))
	if d, ok := o.sinceEnter(k, now); ok {
		o.commitLatency.Observe(d.Seconds())
	}
	o.mu.Lock()
	delete(o.enterAt, k)
	o.mu.Unlock()
	o.HealthT.Touch()
	o.trace(KindCommitted, k, strconv.Itoa(payloadBytes)+" payload bytes")
}

// Resync records a stall-triggered resynchronisation broadcast.
func (o *Observer) Resync(k uint64, now time.Duration) {
	if o == nil {
		return
	}
	o.resyncs.Inc()
	o.trace(KindResync, k, "")
}

// Backfill records one catch-up response to a lagging peer: inline
// beacon shares answered on the spot, deferred share rounds enqueued to
// the async worker.
func (o *Observer) Backfill(peer int, inline, deferred int, now time.Duration) {
	if o == nil {
		return
	}
	o.backfills.Inc()
	o.backfillInline.Add(int64(inline))
	o.backfillDefer.Add(int64(deferred))
	o.trace(KindBackfill, 0, "peer "+strconv.Itoa(peer)+": "+strconv.Itoa(inline)+" inline, "+strconv.Itoa(deferred)+" deferred")
}

// Checkpoint records one certified checkpoint assembled locally.
func (o *Observer) Checkpoint(k uint64, now time.Duration) {
	if o == nil {
		return
	}
	o.ckptCreated.Inc()
	o.trace(KindCheckpoint, k, "assembled")
}

// CheckpointInstalled records one certified checkpoint installed from a
// peer, jumping this node's frontier to round k.
func (o *Observer) CheckpointInstalled(k uint64, now time.Duration) {
	if o == nil {
		return
	}
	o.ckptInstalled.Inc()
	o.trace(KindCheckpoint, k, "installed")
}

// CheckpointServed records one checkpoint transfer offered to a peer
// stuck behind the prune horizon.
func (o *Observer) CheckpointServed(peer int, k uint64, now time.Duration) {
	if o == nil {
		return
	}
	o.ckptServed.Inc()
	o.trace(KindCheckpoint, k, "served to peer "+strconv.Itoa(peer))
}

// ResyncLost records the detection of an unrecoverable lag.
func (o *Observer) ResyncLost(gap uint64, now time.Duration) {
	if o == nil {
		return
	}
	o.resyncLost.Inc()
	o.trace(KindResyncLost, 0, strconv.FormatUint(gap, 10)+" rounds behind the frontier")
}

// RankDisqualified records clause (c) disqualifying a proposer rank:
// this node saw two distinct valid blocks of one rank — proof the
// proposer equivocated (the adversary campaign's detection signal).
func (o *Observer) RankDisqualified(k uint64, rank int, now time.Duration) {
	if o == nil {
		return
	}
	o.ranksDisq.Inc()
	o.trace(KindRankDisq, k, "rank "+strconv.Itoa(rank))
}

// RejectedMessage records one inbound artifact failing admission,
// labeled with the internal/crypto reason classification.
func (o *Observer) RejectedMessage(reason string) {
	if o == nil {
		return
	}
	o.rejects.With(reason).Inc()
}

// MessageReceived records one message delivered to the event loop.
func (o *Observer) MessageReceived() {
	if o == nil {
		return
	}
	o.msgsReceived.Inc()
}

// TickFired records one timer tick delivered to the event loop.
func (o *Observer) TickFired() {
	if o == nil {
		return
	}
	o.ticks.Inc()
}

// Snapshot returns the common map view of the observer's registry.
func (o *Observer) Snapshot() Snapshot {
	if o == nil {
		return Snapshot{}
	}
	return o.Registry.Snapshot()
}

// HealthFunc adapts the tracker for the HTTP handler.
func (o *Observer) HealthFunc(stallAfter time.Duration) func() Health {
	if o == nil {
		return func() Health { return Health{} }
	}
	return func() Health { return o.HealthT.Health(stallAfter) }
}
