package gateway

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// httpHarness serves the /v1 API over two hand-driven gateways, with a
// background committer finalizing pending commands every few
// milliseconds so wait=true requests resolve.
type httpHarness struct {
	parties []*harness
	srv     *httptest.Server
	stopC   chan struct{}
	wg      sync.WaitGroup
}

func newHTTPHarness(t *testing.T, autoCommit bool) *httpHarness {
	t.Helper()
	hh := &httpHarness{stopC: make(chan struct{})}
	gws := make([]*Gateway, 2)
	for i := range gws {
		p := newHarness(t, Options{Party: i, MaxBacklog: 4})
		hh.parties = append(hh.parties, p)
		gws[i] = p.gw
	}
	hh.srv = httptest.NewServer(NewHandler(gws, 5*time.Second))
	t.Cleanup(hh.srv.Close)
	if autoCommit {
		hh.wg.Add(1)
		go func() {
			defer hh.wg.Done()
			round := uint64(0)
			for {
				select {
				case <-hh.stopC:
					return
				case <-time.After(2 * time.Millisecond):
					// Model atomic broadcast: the round's leader proposes its
					// pending batch and EVERY party applies it.
					round++
					leader := hh.parties[int(round)%len(hh.parties)]
					payload := leader.q.GetPayload(0, nil, nil)
					for _, p := range hh.parties {
						p.kv.Apply(payload)
						p.q.MarkCommitted(payload)
						p.gw.ObserveCommit(round, payload)
					}
				}
			}
		}()
		t.Cleanup(func() { close(hh.stopC); hh.wg.Wait() })
	}
	return hh
}

func (hh *httpHarness) post(t *testing.T, path, body string) (int, map[string]any) {
	t.Helper()
	res, err := http.Post(hh.srv.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return decodeBody(t, res)
}

func (hh *httpHarness) get(t *testing.T, path string) (int, map[string]any) {
	t.Helper()
	res, err := http.Get(hh.srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	return decodeBody(t, res)
}

func decodeBody(t *testing.T, res *http.Response) (int, map[string]any) {
	t.Helper()
	defer res.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(res.Body).Decode(&m); err != nil {
		t.Fatalf("response not JSON: %v", err)
	}
	return res.StatusCode, m
}

func TestHTTPSubmitWaitRead(t *testing.T) {
	hh := newHTTPHarness(t, true)

	// wait=true (default): 200 only at finality, with the token.
	code, body := hh.post(t, "/v1/submit", `{"client":1,"seq":1,"op":"set","key":"greeting","value":"hi"}`)
	if code != http.StatusOK || body["committed"] != true {
		t.Fatalf("submit = %d %v, want 200 committed", code, body)
	}
	token, ok := body["commit_index"].(float64)
	if !ok || token < 1 {
		t.Fatalf("commit_index missing from finality response: %v", body)
	}

	// Read-your-writes on the OTHER party with the returned token.
	code, body = hh.get(t, "/v1/read?party=1&key=greeting&token="+jsonNum(token))
	if code != http.StatusOK || body["found"] != true || body["value"] != "hi" {
		t.Fatalf("cross-party read = %d %v, want found hi", code, body)
	}

	// wait=false: 202 accepted, no commit index; /v1/wait finishes the job.
	code, body = hh.post(t, "/v1/submit", `{"client":1,"seq":2,"key":"second","value":"x","wait":false}`)
	if code != http.StatusAccepted || body["committed"] == true {
		t.Fatalf("wait=false submit = %d %v, want 202 uncommitted", code, body)
	}
	code, body = hh.get(t, "/v1/wait?client=1&seq=2")
	if code != http.StatusOK || body["committed"] != true {
		t.Fatalf("wait after 202 = %d %v, want 200 committed", code, body)
	}
}

func TestHTTPErrorPaths(t *testing.T) {
	hh := newHTTPHarness(t, false) // no committer: backlog only fills

	// Malformed JSON and bad op.
	if code, _ := hh.post(t, "/v1/submit", `{`); code != http.StatusBadRequest {
		t.Fatalf("bad JSON = %d, want 400", code)
	}
	if code, _ := hh.post(t, "/v1/submit", `{"client":1,"seq":1,"op":"increment","key":"k"}`); code != http.StatusBadRequest {
		t.Fatalf("unknown op = %d, want 400", code)
	}
	// Party selector out of range.
	if code, _ := hh.post(t, "/v1/submit?party=9", `{"client":1,"seq":1,"key":"k"}`); code != http.StatusBadRequest {
		t.Fatalf("party out of range = %d, want 400", code)
	}
	// Unknown identity on /v1/wait.
	if code, _ := hh.get(t, "/v1/wait?client=99&seq=99"); code != http.StatusNotFound {
		t.Fatalf("unknown wait = %d, want 404", code)
	}
	// Duplicate: same identity twice while the first is still pending.
	if code, _ := hh.post(t, "/v1/submit", `{"client":2,"seq":1,"key":"k","wait":false}`); code != http.StatusAccepted {
		t.Fatalf("first submit = %d, want 202", code)
	}
	if code, _ := hh.post(t, "/v1/submit", `{"client":2,"seq":1,"key":"k","wait":false}`); code != http.StatusConflict {
		t.Fatalf("duplicate submit = %d, want 409", code)
	}
	// Backpressure: MaxBacklog=4; one slot is taken — fill the rest, then 429.
	for seq := 2; seq <= 4; seq++ {
		if code, _ := hh.post(t, "/v1/submit",
			`{"client":2,"seq":`+jsonNum(float64(seq))+`,"key":"k","wait":false}`); code != http.StatusAccepted {
			t.Fatalf("fill seq %d = %d, want 202", seq, code)
		}
	}
	res, err := http.Post(hh.srv.URL+"/v1/submit", "application/json",
		strings.NewReader(`{"client":2,"seq":5,"key":"k","wait":false}`))
	if err != nil {
		t.Fatal(err)
	}
	code, _ := decodeBody(t, res)
	if code != http.StatusTooManyRequests {
		t.Fatalf("over-backlog submit = %d, want 429", code)
	}
	if res.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	// Method discipline.
	if code, _ := hh.get(t, "/v1/submit"); code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/submit = %d, want 405", code)
	}
	// Read validation.
	if code, _ := hh.get(t, "/v1/read"); code != http.StatusBadRequest {
		t.Fatalf("read without key = %d, want 400", code)
	}
	if code, _ := hh.get(t, "/v1/read?key=k&token=zebra"); code != http.StatusBadRequest {
		t.Fatalf("read with bad token = %d, want 400", code)
	}
}

func TestHTTPReadTimesOutOnUnreachedToken(t *testing.T) {
	hh := &httpHarness{}
	p := newHarness(t, Options{})
	hh.parties = append(hh.parties, p)
	hh.srv = httptest.NewServer(NewHandler([]*Gateway{p.gw}, 50*time.Millisecond))
	t.Cleanup(hh.srv.Close)

	code, _ := hh.get(t, "/v1/read?key=k&token=10")
	if code != http.StatusGatewayTimeout {
		t.Fatalf("read past index with 50ms budget = %d, want 504", code)
	}
}

func jsonNum(f float64) string {
	b, _ := json.Marshal(f)
	return string(b)
}
