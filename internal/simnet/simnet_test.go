package simnet

import (
	"math/rand"
	"testing"
	"time"

	"icc/internal/engine"
	"icc/internal/metrics"
	"icc/internal/types"
)

// echoEngine broadcasts one beacon-share message at Init, counts
// everything it receives, and requests a tick at a fixed period.
type echoEngine struct {
	id       types.PartyID
	received int
	ticks    int
	period   time.Duration
	lastWake time.Duration
	history  []string
}

func (e *echoEngine) ID() types.PartyID { return e.id }

func (e *echoEngine) Init(now time.Duration) []engine.Output {
	return []engine.Output{engine.Broadcast(&types.BeaconShare{Round: 1, Signer: e.id, Share: []byte{byte(e.id)}})}
}

func (e *echoEngine) HandleMessage(from types.PartyID, m types.Message, now time.Duration) []engine.Output {
	e.received++
	e.history = append(e.history, from.String())
	return nil
}

func (e *echoEngine) Tick(now time.Duration) []engine.Output {
	e.ticks++
	e.lastWake = now + e.period
	return nil
}

func (e *echoEngine) NextWake(now time.Duration) (time.Duration, bool) {
	if e.period == 0 || e.ticks >= 3 {
		return 0, false
	}
	return now + e.period, true
}

func (e *echoEngine) CurrentRound() types.Round { return 1 }

func build(t *testing.T, n int, opts Options) (*Network, []*echoEngine) {
	t.Helper()
	nw := New(opts)
	engines := make([]*echoEngine, n)
	for i := 0; i < n; i++ {
		engines[i] = &echoEngine{id: types.PartyID(i)}
		nw.AddNode(engines[i], true)
	}
	return nw, engines
}

func TestBroadcastReachesEveryoneExceptSender(t *testing.T) {
	nw, engines := build(t, 5, Options{Seed: 1, Delay: Fixed{D: 10 * time.Millisecond}})
	nw.Start()
	nw.Run(time.Second)
	for i, e := range engines {
		if e.received != 4 {
			t.Fatalf("engine %d received %d messages, want 4", i, e.received)
		}
	}
	if nw.Now() != time.Second {
		t.Fatalf("final time %v, want 1s", nw.Now())
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []string {
		nw, engines := build(t, 6, Options{Seed: 42, Delay: Uniform{Min: time.Millisecond, Max: 50 * time.Millisecond}})
		nw.Start()
		nw.Run(time.Second)
		var all []string
		for _, e := range engines {
			all = append(all, e.history...)
		}
		return all
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("different event counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("delivery order diverged at %d: %s vs %s", i, a[i], b[i])
		}
	}
}

func TestCrashStopsDelivery(t *testing.T) {
	nw, engines := build(t, 3, Options{Seed: 7, Delay: Fixed{D: 5 * time.Millisecond}})
	nw.Crash(2)
	nw.Start()
	nw.Run(time.Second)
	if engines[2].received != 0 {
		t.Fatalf("crashed node received %d messages", engines[2].received)
	}
	// Others still hear each other AND the crashed node's Init broadcast
	// (crash only stops reception here; silent-from-birth behaviour is an
	// adversary-engine concern).
	if engines[0].received != 2 {
		t.Fatalf("node 0 received %d, want 2", engines[0].received)
	}
}

func TestTicksFollowNextWake(t *testing.T) {
	nw := New(Options{Seed: 1, Delay: Fixed{D: time.Millisecond}})
	e := &echoEngine{id: 0, period: 100 * time.Millisecond}
	nw.AddNode(e, true)
	nw.Start()
	nw.Run(time.Second)
	if e.ticks != 3 {
		t.Fatalf("ticks = %d, want 3 (engine stops asking after 3)", e.ticks)
	}
}

func TestRecorderCountsSends(t *testing.T) {
	rec := metrics.NewRecorder(4)
	nw, _ := build(t, 4, Options{Seed: 1, Delay: Fixed{D: time.Millisecond}, Recorder: rec})
	nw.Start()
	nw.Run(time.Second)
	s := rec.Summarize()
	// 4 nodes broadcast once each to 3 peers.
	if s.TotalMsgs != 12 {
		t.Fatalf("total messages = %d, want 12", s.TotalMsgs)
	}
	if got := rec.RoundMsgs(1); got != 12 {
		t.Fatalf("round-1 message complexity = %d, want 12", got)
	}
	if s.TotalBytes <= 0 || s.MaxPartyBytes <= 0 {
		t.Fatal("byte accounting missing")
	}
}

func TestRunUntil(t *testing.T) {
	nw, engines := build(t, 3, Options{Seed: 1, Delay: Fixed{D: 10 * time.Millisecond}})
	nw.Start()
	ok := nw.RunUntil(func() bool { return engines[0].received == 2 }, time.Second)
	if !ok {
		t.Fatal("predicate never satisfied")
	}
	if nw.Now() != 10*time.Millisecond {
		t.Fatalf("predicate satisfied at %v, want 10ms", nw.Now())
	}
	if !nw.RunUntil(func() bool { return true }, 0) {
		t.Fatal("trivially-true predicate failed")
	}
	if nw.RunUntil(func() bool { return false }, 20*time.Millisecond) {
		t.Fatal("impossible predicate succeeded")
	}
}

func TestWANMatrixBounds(t *testing.T) {
	const n = 10
	m := NewWANMatrix(n, 6*time.Millisecond, 110*time.Millisecond, 3)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			if m.Base[i][j] != m.Base[j][i] {
				t.Fatal("matrix not symmetric")
			}
			d, ok := m.Sample(rng, types.PartyID(i), types.PartyID(j), 100)
			if !ok {
				t.Fatal("WAN matrix dropped a message")
			}
			if d < 3*time.Millisecond || d > 60*time.Millisecond {
				t.Fatalf("one-way delay %v outside [3ms, 60ms]", d)
			}
		}
	}
	if m.MaxOneWay() < 3*time.Millisecond {
		t.Fatal("MaxOneWay too small")
	}
}

func TestBandwidthAddsTransmissionTime(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	b := Bandwidth{Inner: Fixed{D: 10 * time.Millisecond}, BytesPerSec: 1000}
	d, ok := b.Sample(rng, 0, 1, 500) // 500 bytes at 1000 B/s = 500ms
	if !ok || d != 510*time.Millisecond {
		t.Fatalf("bandwidth delay = %v, want 510ms", d)
	}
}

func TestAsyncWindowsInflateDelays(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	aw := &AsyncWindows{
		Inner:   Fixed{D: 10 * time.Millisecond},
		Windows: []Window{{From: 100 * time.Millisecond, To: 200 * time.Millisecond}},
		Extra:   time.Second,
	}
	aw.SetNow(50 * time.Millisecond)
	d, _ := aw.Sample(rng, 0, 1, 0)
	if d != 10*time.Millisecond {
		t.Fatalf("outside window: %v", d)
	}
	aw.SetNow(150 * time.Millisecond)
	d, _ = aw.Sample(rng, 0, 1, 0)
	// 10ms base + 1s extra + 50ms residual window = 1.06s
	if d != 10*time.Millisecond+time.Second+50*time.Millisecond {
		t.Fatalf("inside window: %v", d)
	}
}

func TestPartitionHoldsCrossGroupTraffic(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := &Partition{
		Inner:   Fixed{D: 10 * time.Millisecond},
		Windows: []Window{{From: 100 * time.Millisecond, To: 300 * time.Millisecond}},
		Group:   map[types.PartyID]int{2: 1}, // {0,1} | {2}
	}
	p.SetNow(150 * time.Millisecond)
	d, ok := p.Sample(rng, 0, 2, 0)
	// Held at the cut for the remaining 150ms of the window, then the
	// 10ms residual delay.
	if !ok || d != 150*time.Millisecond+10*time.Millisecond {
		t.Fatalf("cross-group delay inside window = %v, want 160ms", d)
	}
	d, ok = p.Sample(rng, 0, 1, 0)
	if !ok || d != 10*time.Millisecond {
		t.Fatalf("same-group delay inside window = %v, want 10ms", d)
	}
	p.SetNow(400 * time.Millisecond)
	d, ok = p.Sample(rng, 0, 2, 0)
	if !ok || d != 10*time.Millisecond {
		t.Fatalf("cross-group delay after window = %v, want 10ms", d)
	}
}

func TestPartitionEndToEnd(t *testing.T) {
	// Groups {0,1} | {2} with the cut open from the very start: the Init
	// broadcasts (sent at t=0) between groups are held until the window
	// closes at 100ms, while intra-group traffic flows normally.
	pm := &Partition{
		Inner:   Fixed{D: 10 * time.Millisecond},
		Windows: []Window{{From: 0, To: 100 * time.Millisecond}},
		Group:   map[types.PartyID]int{2: 1},
	}
	nw, engines := build(t, 3, Options{Seed: 4, Delay: pm})
	nw.Start()
	nw.Run(50 * time.Millisecond)
	if engines[2].received != 0 {
		t.Fatalf("partitioned node received %d messages during the window", engines[2].received)
	}
	if engines[0].received != 1 || engines[1].received != 1 {
		t.Fatalf("intra-group delivery broken: %d/%d", engines[0].received, engines[1].received)
	}
	nw.Run(time.Second)
	for i, e := range engines {
		if e.received != 2 {
			t.Fatalf("engine %d received %d after heal, want 2 (nothing lost)", i, e.received)
		}
	}
}
