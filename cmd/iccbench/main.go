// Command iccbench regenerates the paper's evaluation artifacts
// (Table 1 and the analytical-claim figures; DESIGN.md §3) at full
// scale and prints them as text tables. EXPERIMENTS.md records the
// output of a complete run.
//
// Usage:
//
//	iccbench                 # run every experiment
//	iccbench -exp table1     # one experiment
//	iccbench -scale 0.1      # shrink simulated windows 10x
//	iccbench -list           # list experiment ids
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"icc/internal/experiments"
)

var registry = map[string]func(experiments.Scale) *experiments.Table{
	"table1":         experiments.Table1,
	"latency":        experiments.LatencyThroughput,
	"msgcomplexity":  experiments.MessageComplexity,
	"rounds":         experiments.RoundComplexity,
	"robustness":     experiments.Robustness,
	"responsiveness": experiments.Responsiveness,
	"dissemination":  experiments.Dissemination,
	"baselines":      experiments.Baselines,
	"ablation":       experiments.AblationDelays,
	"weakadaptive":   experiments.WeakAdaptiveAdversary,
	"fragility":      experiments.PBFTFragility,
	"verifypipeline": experiments.VerifyPipeline,
	"catchup":        experiments.Catchup,
	"durability":     experiments.Durability,
	"gateway":        experiments.Gateway,
	"scaleout":       experiments.Scaleout,
	"certscheme":     experiments.CertScheme,
	"adversary":      experiments.AdversaryCampaign,
}

// benchSummary is the machine-readable run record written by -json, so
// the repo accumulates a bench trajectory across PRs.
type benchSummary struct {
	GeneratedAt string                 `json:"generated_at"`
	Scale       float64                `json:"scale"`
	Experiments map[string]benchResult `json:"experiments"`
}

type benchResult struct {
	Table   *experiments.Table `json:"table"`
	Seconds float64            `json:"seconds"`
	// Metrics mirrors Table.Metrics at the top level of the record, so
	// trend tooling reads headline scalars (e.g. gateway latency
	// percentiles) without digging into rendered cells.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	exp := flag.String("exp", "", "experiment to run (default: all)")
	scale := flag.Float64("scale", 1.0, "scale factor for simulated windows (0 < s <= 1)")
	list := flag.Bool("list", false, "list experiment names and exit")
	jsonOut := flag.Bool("json", false, "also write a BENCH_<timestamp>.json summary")
	jsonDir := flag.String("json-dir", ".", "directory for the -json summary file")
	flag.Parse()

	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)

	if *list {
		fmt.Println(strings.Join(names, "\n"))
		return
	}
	run := names
	if *exp != "" {
		if _, ok := registry[*exp]; !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; available: %s\n", *exp, strings.Join(names, ", "))
			os.Exit(1)
		}
		run = []string{*exp}
	}
	summary := benchSummary{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Scale:       *scale,
		Experiments: make(map[string]benchResult, len(run)),
	}
	for _, name := range run {
		start := time.Now()
		table := registry[name](experiments.Scale(*scale))
		elapsed := time.Since(start)
		fmt.Println(table.String())
		fmt.Printf("(%s completed in %v)\n\n", name, elapsed.Round(time.Millisecond))
		summary.Experiments[name] = benchResult{Table: table, Seconds: elapsed.Seconds(), Metrics: table.Metrics}
	}
	if *jsonOut {
		path := filepath.Join(*jsonDir, time.Now().UTC().Format("BENCH_20060102T150405.json"))
		raw, err := json.MarshalIndent(summary, "", "  ")
		if err == nil {
			err = os.WriteFile(path, raw, 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "iccbench: writing %s: %v\n", path, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", path)
	}
}
