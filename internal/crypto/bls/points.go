package bls

import (
	"errors"
	"fmt"
	"math/big"

	"icc/internal/crypto/hash"
)

// G1 generator (standard BLS12-381 constants).
var (
	g1GenX, _ = new(big.Int).SetString("17f1d3a73197d7942695638c4fa9ac0fc3688c4f9774b905a14e3a3f171bac586c55e83ff97a1aeffb3af00adb22c6bb", 16)
	g1GenY, _ = new(big.Int).SetString("08b3f481e3aaa0f1a09e30ed741d8ae4fcf5e095d5d00af600db18cb2c04b3edd03cc744a2888ae40caa232946c5e7e1", 16)
)

// G2 generator coordinates (x = x0 + x1·u, y = y0 + y1·u).
var (
	g2GenX0, _ = new(big.Int).SetString("024aa2b2f08f0a91260805272dc51051c6e47ad4fa403b02b4510b647ae3d1770bac0326a805bbefd48056c8c121bdb8", 16)
	g2GenX1, _ = new(big.Int).SetString("13e02b6052719f607dacd3a088274f65596bd0d09920b61ab5da61bbdc7f5049334cf11213945d57e5ac7d055d042b7e", 16)
	g2GenY0, _ = new(big.Int).SetString("0ce5d527727d6e118cc9cdc6da2e351aadfd9baa8cbdd3a76d429a695160d12c923ac9cc3baca289e193548608b82801", 16)
	g2GenY1, _ = new(big.Int).SetString("0606c4a02ea734cc32acd2b02bc28b99cb3e287e85a763af267492ab572e99ab3f370d275cec1da1aaa9075ff05f79be", 16)
)

// G1Point is an affine point on E: y² = x³ + 4 over Fp (nil coords =
// identity).
type G1Point struct {
	x, y *big.Int
}

// G1Infinity returns the identity.
func G1Infinity() *G1Point { return &G1Point{} }

// G1Generator returns the standard generator.
func G1Generator() *G1Point {
	return &G1Point{new(big.Int).Set(g1GenX), new(big.Int).Set(g1GenY)}
}

// IsInfinity reports whether the point is the identity.
func (p *G1Point) IsInfinity() bool { return p.x == nil }

// Equal reports point equality.
func (p *G1Point) Equal(q *G1Point) bool {
	if p.IsInfinity() || q.IsInfinity() {
		return p.IsInfinity() && q.IsInfinity()
	}
	return p.x.Cmp(q.x) == 0 && p.y.Cmp(q.y) == 0
}

// IsOnCurve verifies the curve equation.
func (p *G1Point) IsOnCurve() bool {
	if p.IsInfinity() {
		return true
	}
	lhs := fpMul(p.y, p.y)
	rhs := fpAdd(fpMul(fpMul(p.x, p.x), p.x), curveB4)
	return lhs.Cmp(rhs) == 0
}

// Add returns p + q (affine formulas).
func (p *G1Point) Add(q *G1Point) *G1Point {
	if p.IsInfinity() {
		return &G1Point{cp(q.x), cp(q.y)}
	}
	if q.IsInfinity() {
		return &G1Point{cp(p.x), cp(p.y)}
	}
	if p.x.Cmp(q.x) == 0 {
		if p.y.Cmp(q.y) != 0 || p.y.Sign() == 0 {
			return G1Infinity()
		}
		// Doubling: λ = 3x²/2y.
		num := fpMul(big.NewInt(3), fpMul(p.x, p.x))
		den := fpInv(fpAdd(p.y, p.y))
		return g1Chord(p, p, fpMul(num, den))
	}
	lam := fpMul(fpSub(q.y, p.y), fpInv(fpSub(q.x, p.x)))
	return g1Chord(p, q, lam)
}

func g1Chord(p, q *G1Point, lam *big.Int) *G1Point {
	x3 := fpSub(fpSub(fpMul(lam, lam), p.x), q.x)
	y3 := fpSub(fpMul(lam, fpSub(p.x, x3)), p.y)
	return &G1Point{x3, y3}
}

func cp(v *big.Int) *big.Int {
	if v == nil {
		return nil
	}
	return new(big.Int).Set(v)
}

// Neg returns −p.
func (p *G1Point) Neg() *G1Point {
	if p.IsInfinity() {
		return G1Infinity()
	}
	return &G1Point{cp(p.x), fpNeg(p.y)}
}

// Mul returns k·p (double-and-add; k reduced mod R).
func (p *G1Point) Mul(k *big.Int) *G1Point {
	kk := new(big.Int).Mod(k, R)
	acc := G1Infinity()
	for i := kk.BitLen() - 1; i >= 0; i-- {
		acc = acc.Add(acc)
		if kk.Bit(i) == 1 {
			acc = acc.Add(p)
		}
	}
	return acc
}

// mulRaw multiplies by an arbitrary (unreduced) integer — used for
// cofactor clearing, where the multiplier exceeds R.
func (p *G1Point) mulRaw(k *big.Int) *G1Point {
	acc := G1Infinity()
	for i := k.BitLen() - 1; i >= 0; i-- {
		acc = acc.Add(acc)
		if k.Bit(i) == 1 {
			acc = acc.Add(p)
		}
	}
	return acc
}

// HashToG1 maps a message to a point of order R via deterministic
// try-and-increment followed by cofactor clearing. (Production systems
// use constant-time SWU; grinding is fine for a reproduction — the
// output distribution is indistinguishable either way.)
func HashToG1(msg []byte) *G1Point {
	for ctr := uint64(0); ; ctr++ {
		d := hash.SumUint64("bls/hash-to-g1", ctr)
		d2 := hash.Sum("bls/hash-to-g1-x", d[:], msg)
		// Two digests give 512 bits; reduce mod P for negligible bias.
		d3 := hash.Sum("bls/hash-to-g1-x2", d[:], msg)
		x := new(big.Int).SetBytes(append(d2[:], d3[:16]...))
		x.Mod(x, P)
		rhs := fpAdd(fpMul(fpMul(x, x), x), curveB4)
		y := fpSqrt(rhs)
		if y == nil {
			continue
		}
		// Canonical sign: pick the even root.
		if y.Bit(0) == 1 {
			y = fpNeg(y)
		}
		p := (&G1Point{x, y}).mulRaw(g1CofactorH)
		if !p.IsInfinity() {
			return p
		}
	}
}

// G2Point is an affine point on E': y² = x³ + 4(1+u) over Fp2.
type G2Point struct {
	x, y fp2
	inf  bool
}

// G2Infinity returns the identity.
func G2Infinity() *G2Point { return &G2Point{inf: true} }

// G2Generator returns the standard generator.
func G2Generator() *G2Point {
	return &G2Point{
		x: fp2{new(big.Int).Set(g2GenX0), new(big.Int).Set(g2GenX1)},
		y: fp2{new(big.Int).Set(g2GenY0), new(big.Int).Set(g2GenY1)},
	}
}

// IsInfinity reports whether the point is the identity.
func (p *G2Point) IsInfinity() bool { return p.inf }

// Equal reports point equality.
func (p *G2Point) Equal(q *G2Point) bool {
	if p.inf || q.inf {
		return p.inf && q.inf
	}
	return p.x.equal(q.x) && p.y.equal(q.y)
}

// IsOnCurve verifies the twisted curve equation y² = x³ + 4ξ.
func (p *G2Point) IsOnCurve() bool {
	if p.inf {
		return true
	}
	lhs := p.y.square()
	rhs := p.x.square().mul(p.x).add(xi().mulScalar(curveB4))
	return lhs.equal(rhs)
}

// Add returns p + q.
func (p *G2Point) Add(q *G2Point) *G2Point {
	if p.inf {
		return &G2Point{x: q.x, y: q.y, inf: q.inf}
	}
	if q.inf {
		return &G2Point{x: p.x, y: p.y, inf: p.inf}
	}
	if p.x.equal(q.x) {
		if !p.y.equal(q.y) || p.y.isZero() {
			return G2Infinity()
		}
		num := p.x.square().mulScalar(big.NewInt(3))
		den := p.y.add(p.y).inv()
		return g2Chord(p, p, num.mul(den))
	}
	lam := q.y.sub(p.y).mul(q.x.sub(p.x).inv())
	return g2Chord(p, q, lam)
}

func g2Chord(p, q *G2Point, lam fp2) *G2Point {
	x3 := lam.square().sub(p.x).sub(q.x)
	y3 := lam.mul(p.x.sub(x3)).sub(p.y)
	return &G2Point{x: x3, y: y3}
}

// Neg returns −p.
func (p *G2Point) Neg() *G2Point {
	if p.inf {
		return G2Infinity()
	}
	return &G2Point{x: p.x, y: p.y.neg()}
}

// Mul returns k·p (k reduced mod R).
func (p *G2Point) Mul(k *big.Int) *G2Point {
	kk := new(big.Int).Mod(k, R)
	acc := G2Infinity()
	for i := kk.BitLen() - 1; i >= 0; i-- {
		acc = acc.Add(acc)
		if kk.Bit(i) == 1 {
			acc = acc.Add(p)
		}
	}
	return acc
}

// G1PointLen is the uncompressed encoding length (x ‖ y, 48 bytes each).
const G1PointLen = 96

// G2PointLen is the uncompressed encoding length (x.a0 ‖ x.a1 ‖ y.a0 ‖
// y.a1, 48 bytes each).
const G2PointLen = 192

// Encode serialises the point uncompressed; the identity is all zeros.
func (p *G1Point) Encode() []byte {
	out := make([]byte, G1PointLen)
	if p.IsInfinity() {
		return out
	}
	p.x.FillBytes(out[:48])
	p.y.FillBytes(out[48:])
	return out
}

// DecodeG1 parses an encoding produced by Encode, rejecting off-curve
// points.
func DecodeG1(b []byte) (*G1Point, error) {
	if len(b) != G1PointLen {
		return nil, fmt.Errorf("bls: bad G1 encoding length %d", len(b))
	}
	allZero := true
	for _, c := range b {
		if c != 0 {
			allZero = false
			break
		}
	}
	if allZero {
		return G1Infinity(), nil
	}
	x := new(big.Int).SetBytes(b[:48])
	y := new(big.Int).SetBytes(b[48:])
	if x.Cmp(P) >= 0 || y.Cmp(P) >= 0 {
		return nil, errors.New("bls: G1 coordinate out of range")
	}
	p := &G1Point{x: x, y: y}
	if !p.IsOnCurve() {
		return nil, errors.New("bls: point not on curve")
	}
	return p, nil
}

// Encode serialises the point uncompressed; the identity is all zeros.
func (p *G2Point) Encode() []byte {
	out := make([]byte, G2PointLen)
	if p.IsInfinity() {
		return out
	}
	p.x.a0.FillBytes(out[:48])
	p.x.a1.FillBytes(out[48:96])
	p.y.a0.FillBytes(out[96:144])
	p.y.a1.FillBytes(out[144:])
	return out
}

// DecodeG2 parses an encoding produced by Encode, rejecting off-curve
// points.
func DecodeG2(b []byte) (*G2Point, error) {
	if len(b) != G2PointLen {
		return nil, fmt.Errorf("bls: bad G2 encoding length %d", len(b))
	}
	allZero := true
	for _, c := range b {
		if c != 0 {
			allZero = false
			break
		}
	}
	if allZero {
		return G2Infinity(), nil
	}
	coords := make([]*big.Int, 4)
	for i := range coords {
		coords[i] = new(big.Int).SetBytes(b[i*48 : (i+1)*48])
		if coords[i].Cmp(P) >= 0 {
			return nil, errors.New("bls: G2 coordinate out of range")
		}
	}
	p := &G2Point{x: fp2{coords[0], coords[1]}, y: fp2{coords[2], coords[3]}}
	if !p.IsOnCurve() {
		return nil, errors.New("bls: point not on curve")
	}
	return p, nil
}
