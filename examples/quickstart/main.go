// Quickstart: run a 4-party Internet Computer Consensus cluster inside
// one process, submit key-value commands through the typed client API,
// and watch acknowledgements arrive only at finality — then use each
// receipt's commit-index token to read your own write back from a
// *different* replica.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"icc"
)

func main() {
	// Four parties tolerate t = 1 Byzantine fault (t < n/3).
	cluster, err := icc.NewLocalCluster(4, icc.WithDeltaBound(50*time.Millisecond))
	if err != nil {
		log.Fatalf("building cluster: %v", err)
	}
	cluster.Start()
	defer cluster.Stop()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// Submit commands to different parties — atomic broadcast orders
	// them identically everywhere. Each command uses its own client ID:
	// (Client, Seq) pairs are applied in per-client sequence order, so a
	// single client must funnel its commands through one replica to keep
	// them ordered; independent clients are free to use any replica.
	fmt.Println("submitting 5 commands...")
	receipts := make([]*icc.Receipt, 0, 5)
	for i := uint64(1); i <= 5; i++ {
		party := int(i) % 4
		r, err := cluster.Client(party).Submit(ctx, icc.Command{
			Client: 42 + i,
			Seq:    1,
			Op:     icc.OpSet,
			Key:    fmt.Sprintf("greeting-%d", i),
			Value:  []byte(fmt.Sprintf("hello from command %d", i)),
		})
		if err != nil {
			log.Fatalf("submit %d: %v", i, err) // typed: ErrBacklogFull, ErrNotRunning, ...
		}
		receipts = append(receipts, r)
	}

	// Each receipt resolves when its command is in a *finalized* block —
	// there is no earlier acknowledgement to wait for.
	for i, r := range receipts {
		ack, err := r.Wait(ctx)
		if err != nil {
			log.Fatalf("waiting for command %d: %v", i+1, err)
		}
		fmt.Printf("command %d finalized at commit index %d (%.0fms submit→finalize)\n",
			i+1, ack.CommitIndex, ack.Latency.Seconds()*1000)

		// Read-your-writes: the token makes the write visible on every
		// replica, not just the one that took the submission.
		res, err := cluster.Client((i+2)%4).Read(ctx, fmt.Sprintf("greeting-%d", i+1), ack.CommitIndex)
		if err != nil || !res.Found {
			log.Fatalf("read-your-writes failed for command %d: %v", i+1, err)
		}
		fmt.Printf("  read back from another replica: %q\n", res.Value)
	}

	fmt.Println("\nreplica states:")
	for p := 0; p < 4; p++ {
		v, _ := cluster.KV(p).Get("greeting-3")
		fmt.Printf("  party %d: %d keys, greeting-3=%q, state hash %s\n",
			p, cluster.KV(p).Len(), v, cluster.KV(p).StateHash().Short())
	}
	fmt.Println("all replicas share one state hash: that is atomic broadcast at work")
}
