package experiments

import (
	"crypto/rand"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"icc/internal/beacon"
	"icc/internal/checkpoint"
	"icc/internal/clock"
	"icc/internal/core"
	"icc/internal/crypto/keys"
	"icc/internal/pool"
	rt "icc/internal/runtime"
	"icc/internal/transport"
	"icc/internal/types"
	"icc/internal/verify"
	"icc/internal/wal"
)

// Durability measures restart-to-caught-up time against the rounds the
// cluster advanced while a node was down (E11): a live four-party
// cluster runs, one party is killed without warning (kill -9 — its WAL
// loses the unsynced tail), the survivors advance `gap` rounds, and the
// victim restarts. Three configurations:
//
//   - in-memory (seed behavior): no persistence. The restarted process
//     begins at round 1 with an empty pool and replays the entire chain
//     through artifact resync. Beyond the peers' prune horizon the
//     rounds it needs are gone and it flags itself resync-lost (LOST).
//   - wal replay: crash-consistent WAL, no checkpoints. The restart
//     recovers the pre-crash frontier locally and only the downtime gap
//     crosses the network — but a gap beyond the prune horizon is still
//     unrecoverable (LOST).
//   - wal + checkpoints: full durability. Local restart resumes from
//     the newest certified checkpoint plus the WAL suffix, and a gap
//     beyond the prune horizon is closed by a checkpoint transfer from
//     a peer, so no gap is fatal.
//
// Reported per run: the round the restarted process resumed at before
// touching the network, the local recovery time, and the time from
// restart to committing past the frontier the cluster had at restart.
func Durability(scale Scale) *Table {
	t := &Table{
		ID:      "E11",
		Title:   "restart-to-caught-up time vs downtime gap, by durability configuration",
		Columns: []string{"gap", "configuration", "resume", "recover", "converge"},
		Notes: []string{
			fmt.Sprintf("4 parties, in-process transport, prune horizon %d rounds, checkpoint every %d", e11PruneDepth, e11Interval),
			"resume: finalized round after local recovery, before any network traffic (r1 = cold start)",
			"recover: wall-clock time for WAL replay + checkpoint install on restart",
			"converge: restart to committing past the restart-time frontier; LOST = flagged resync-lost; DNF = neither within 30 s",
		},
	}
	// The largest gap deliberately exceeds the prune horizon: it is the
	// row only the checkpoint-transfer path can survive.
	gaps := []int{16, int(e11PruneDepth) - 16, int(e11PruneDepth) + 32}
	modes := []e11Mode{
		{name: "in-memory (seed behavior)"},
		{name: "wal replay", wal: true},
		{name: "wal + checkpoints", wal: true, ckpt: true},
	}
	for _, gap := range gaps {
		g := scale.scaleInt(gap)
		for _, m := range modes {
			r := durabilityRun(g, m)
			converge := "DNF"
			if r.lost {
				converge = "LOST"
			} else if !r.dnf {
				converge = fmt.Sprintf("%.2fs", r.converge.Seconds())
			}
			t.AddRow(fmt.Sprintf("%d", g), m.name,
				fmt.Sprintf("r%d", r.resume),
				fmt.Sprintf("%.0fms", r.recover.Seconds()*1000),
				converge)
		}
	}
	return t
}

const (
	// e11PruneDepth is half the production default so the beyond-horizon
	// row stays cheap to reach in wall-clock time; the interval keeps
	// the documented margin (several boundaries per horizon).
	e11PruneDepth = core.DefaultPruneDepth / 2
	e11Interval   = e11PruneDepth / 4
)

type e11Mode struct {
	name string
	wal  bool
	ckpt bool
}

type e11Result struct {
	resume   types.Round   // finalized round right after local recovery
	recover  time.Duration // local WAL replay + checkpoint install
	converge time.Duration
	dnf      bool
	lost     bool
}

// durabilityRun runs one kill/gap/restart cycle for one configuration.
func durabilityRun(gap int, mode e11Mode) e11Result {
	const (
		n      = 4
		victim = 3
	)
	pub, privs, err := keys.Deal(rand.Reader, n)
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	base, err := os.MkdirTemp("", "icc-e11-*")
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	defer os.RemoveAll(base)
	hub := transport.NewInproc(n)
	clk := clock.NewWall()

	var mu sync.Mutex
	frontier := make([]types.Round, n)
	states := make([][]byte, n)

	wals := make([]*wal.Log, n)
	stores := make([]*checkpoint.Store, n)
	engines := make([]*core.Engine, n)
	build := func(i int) *rt.Runner {
		pid := types.PartyID(i)
		var w *wal.Log
		var s *checkpoint.Store
		var ival types.Round
		if mode.wal {
			w, err = wal.Open(filepath.Join(base, fmt.Sprintf("party-%d", i), "wal"), wal.Options{})
			if err != nil {
				panic(fmt.Sprintf("experiments: %v", err))
			}
		}
		if mode.ckpt {
			s, err = checkpoint.OpenStore(filepath.Join(base, fmt.Sprintf("party-%d", i), "checkpoints"), checkpoint.StoreOptions{})
			if err != nil {
				panic(fmt.Sprintf("experiments: %v", err))
			}
			ival = e11Interval
		}
		wals[i], stores[i] = w, s
		mu.Lock()
		states[i] = nil
		mu.Unlock()
		eng := core.NewEngine(core.Config{
			Self:               pid,
			Keys:               pub,
			Priv:               privs[i],
			Beacon:             beacon.NewSimulated(n, pid, pub.GenesisSeed),
			DeltaBound:         25 * time.Millisecond,
			PruneDepth:         e11PruneDepth,
			WAL:                w,
			Checkpoints:        s,
			CheckpointInterval: ival,
			StateSnapshot: func() []byte {
				mu.Lock()
				defer mu.Unlock()
				return append([]byte(nil), states[i]...)
			},
			StateRestore: func(st []byte) error {
				mu.Lock()
				defer mu.Unlock()
				states[i] = append([]byte(nil), st...)
				return nil
			},
			Pool: pool.Options{Policy: pool.VerifyPreVerified},
			Hooks: core.Hooks{
				OnCommit: func(b *types.Block, _ time.Duration) {
					d := b.Hash()
					mu.Lock()
					states[i] = append(states[i], d[:]...)
					if b.Round > frontier[i] {
						frontier[i] = b.Round
					}
					mu.Unlock()
				},
			},
		})
		if _, err := eng.Recover(); err != nil {
			panic(fmt.Sprintf("experiments: recover: %v", err))
		}
		engines[i] = eng
		r := rt.NewRunner(eng, hub.Endpoint(pid), clk, n)
		r.SetVerifyPipeline(verify.New(pool.NewVerifier(pub, pool.VerifyFull), verify.Options{}))
		return r
	}

	runners := make([]*rt.Runner, n)
	for i := 0; i < n; i++ {
		runners[i] = build(i)
	}
	defer func() {
		for _, r := range runners {
			r.Stop()
		}
		for _, w := range wals {
			_ = w.Close()
		}
		for _, s := range stores {
			s.Close()
		}
		hub.Close()
	}()
	for _, r := range runners {
		r.Start()
	}

	at := func(i int) types.Round {
		mu.Lock()
		defer mu.Unlock()
		return frontier[i]
	}
	wait := func(deadline time.Time, cond func() bool) bool {
		for time.Now().Before(deadline) {
			if cond() {
				return true
			}
			time.Sleep(5 * time.Millisecond)
		}
		return false
	}

	// Phase 1: run past at least one checkpoint boundary, then kill -9.
	warm := types.Round(2 * e11Interval)
	if !wait(time.Now().Add(2*time.Minute), func() bool { return at(victim) >= warm }) {
		return e11Result{dnf: true}
	}
	runners[victim].Stop()
	if wals[victim] != nil {
		wals[victim].Crash()
	}
	if stores[victim] != nil {
		stores[victim].Close()
	}
	killedAt := at(victim)

	// Phase 2: survivors advance the gap.
	if !wait(time.Now().Add(3*time.Minute), func() bool { return at(0) >= killedAt+types.Round(gap) }) {
		return e11Result{dnf: true}
	}

	// Phase 3: restart over the same directories. A dead process's
	// inbox is gone with it.
	inbox := hub.Endpoint(types.PartyID(victim)).Inbox()
drain:
	for {
		select {
		case <-inbox:
		default:
			break drain
		}
	}
	mu.Lock()
	frontier[victim] = 0
	joinRound := frontier[0]
	mu.Unlock()
	recoverStart := time.Now()
	runners[victim] = build(victim)
	res := e11Result{
		resume:  engines[victim].FinalizedRound(),
		recover: time.Since(recoverStart),
	}
	if res.resume == 0 {
		res.resume = 1 // cold start: round 1, nothing finalized
	}
	restartAt := time.Now()
	runners[victim].Start()

	// Phase 4: converge past the restart-time frontier, flag lost, or
	// give up.
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if at(victim) >= joinRound {
			res.converge = time.Since(restartAt)
			return res
		}
		if engines[victim].ResyncLost() != nil {
			res.lost = true
			return res
		}
		time.Sleep(5 * time.Millisecond)
	}
	res.dnf = true
	return res
}
