package experiments

import (
	"crypto/rand"
	"fmt"
	"sync"
	"time"

	"icc/internal/beacon"
	"icc/internal/clock"
	"icc/internal/core"
	"icc/internal/crypto/keys"
	"icc/internal/gossip"
	"icc/internal/harness"
	"icc/internal/pool"
	"icc/internal/runtime"
	"icc/internal/simnet"
	"icc/internal/transport"
	"icc/internal/types"
)

// Scaleout measures the 100-party gossip path (experiment E13): for
// n ∈ {16, 31, 64, 100} under ICC1, the commits/s and per-party bytes
// per round of three overlay configurations —
//
//   - shares:      every signature share relayed individually (the
//     pre-scale-out wire behaviour);
//   - batched:     shares coalesced into ShareBundle frames on a 2 ms
//     window (amortising frame and statement-header overhead);
//   - batched+agg: additionally, a relay holding a quorum of shares for
//     one statement forwards the aggregated certificate instead of the
//     shares, and beacon relaying stops at t+1 shares.
//
// The paper's §1.1 communication claim is per-party cost that does not
// multiply by the flood factor: naive share gossip costs every party
// O(n·fanout) share frames per round, while an aggregating relay caps
// the per-statement traffic it forwards at one certificate — so the
// per-party bytes curve must grow sublinearly in n once aggregation is
// on. DESIGN.md §14 carries the complexity argument; the growth ratios
// land in the Metrics map for trend tooling (relay aggregation on vs
// off is the A/B the BENCH json records).
//
// A second leg runs n=31 over real TCP loopback with batching and
// aggregation enabled — same code path the LocalCluster facade ships —
// proving the flush timers and relay aggregation hold up under real
// sockets and concurrent event loops, not just the discrete-event net.
func Scaleout(scale Scale) *Table {
	t := &Table{
		ID:    "E13",
		Title: "scale-out: commits/s and bytes/party vs n (ICC1 overlay, share batching, relay aggregation)",
		Columns: []string{"n", "config", "commits/s", "KiB/party/round", "×bytes vs n=16",
			"×n vs 16"},
		Notes: []string{
			"×bytes vs n=16 below ×n vs 16 ⇒ per-party cost grows sublinearly in n (paper §1.1)",
			"shares = per-share relaying, batched = ShareBundle frames (2ms window), +agg = relay-side certificate aggregation",
		},
	}
	blocks := scale.scaleInt(12)
	configs := []struct {
		name   string
		window time.Duration
		agg    bool
	}{
		{"shares", 0, false},
		{"batched", 2 * time.Millisecond, false},
		{"batched+agg", 2 * time.Millisecond, true},
	}
	sizes := []int{16, 31, 64, 100}
	base := make(map[string]float64) // config → bytes/party/round at n=16
	for _, n := range sizes {
		for _, cfg := range configs {
			c, err := harness.New(harness.Options{
				N:                 n,
				Seed:              int64(13000 + n),
				Delay:             simnet.Fixed{D: 10 * time.Millisecond},
				DeltaBound:        50 * time.Millisecond,
				Mode:              harness.ICC1,
				SimBeacon:         true,
				Verify:            pool.VerifySharesOnly,
				PruneDepth:        simPruneDepth,
				GossipBatchWindow: cfg.window,
				GossipAggregate:   cfg.agg,
			})
			if err != nil {
				panic(fmt.Sprintf("experiments: %v", err))
			}
			c.Start()
			c.RunUntilCommitted(blocks, time.Hour)
			s := c.Rec.Summarize()
			rounds := float64(s.CommittedBlocks)
			if rounds == 0 {
				rounds = 1
			}
			elapsed := c.Net.Now().Seconds()
			if elapsed == 0 {
				elapsed = 1
			}
			// Mean bytes per party: the paper's per-party communication
			// measure. (MaxPartyBytes would fold in topology-degree skew —
			// random chords give a few hub parties extra neighbours, and
			// that variance grows with n independently of the per-party
			// scaling under test.)
			perParty := float64(s.TotalBytes) / float64(n) / rounds
			if n == sizes[0] {
				base[cfg.name] = perParty
			}
			growth := perParty / base[cfg.name]
			commitRate := float64(s.CommittedBlocks) / elapsed
			t.AddRow(fmt.Sprintf("%d", n), cfg.name,
				fmt.Sprintf("%.1f", commitRate),
				fmt.Sprintf("%.1f", perParty/1024),
				fmt.Sprintf("%.2f", growth),
				fmt.Sprintf("%.2f", float64(n)/float64(sizes[0])))
			suffix := "noagg"
			if cfg.agg {
				suffix = "agg"
			}
			if cfg.window > 0 {
				t.SetMetric(fmt.Sprintf("sim_bytes_per_party_round_n%d_%s", n, suffix), perParty)
				t.SetMetric(fmt.Sprintf("sim_commits_per_s_n%d_%s", n, suffix), commitRate)
			}
		}
	}
	last := sizes[len(sizes)-1]
	if b := t.Metrics[fmt.Sprintf("sim_bytes_per_party_round_n%d_agg", last)]; base["batched+agg"] > 0 {
		t.SetMetric("bytes_growth_agg", b/base["batched+agg"])
	}
	if b := t.Metrics[fmt.Sprintf("sim_bytes_per_party_round_n%d_noagg", last)]; base["batched"] > 0 {
		t.SetMetric("bytes_growth_noagg", b/base["batched"])
	}
	t.SetMetric("bytes_growth_linear_ref", float64(last)/float64(sizes[0]))

	// Real-socket leg: n=31 on TCP loopback, batching + aggregation on.
	tcpN, tcpWant := 31, scale.scaleInt(4)
	commits, seconds := runTCPCluster(tcpN, tcpWant)
	t.AddRow(fmt.Sprintf("%d", tcpN), "tcp batched+agg",
		fmt.Sprintf("%.1f", float64(commits)/seconds), "-", "-", "-")
	t.SetMetric("tcp_n31_commits", float64(commits))
	t.SetMetric("tcp_n31_commits_per_s", float64(commits)/seconds)
	return t
}

// runTCPCluster assembles an n-party real-TCP loopback cluster with the
// scale-out gossip configuration, waits for every node to commit `want`
// blocks (or a generous wall deadline), and returns the slowest node's
// commit count and the elapsed wall seconds.
func runTCPCluster(n, want int) (commits int, seconds float64) {
	pub, privs, err := keys.Deal(rand.Reader, n)
	if err != nil {
		panic(fmt.Sprintf("experiments: dealing keys: %v", err))
	}
	addrs := make(map[types.PartyID]string, n)
	for i := 0; i < n; i++ {
		addrs[types.PartyID(i)] = "127.0.0.1:0"
	}
	tcps := make([]*transport.TCP, n)
	for i := 0; i < n; i++ {
		ep, err := transport.NewTCPWithOptions(types.PartyID(i), addrs,
			transport.TCPOptions{RedialMax: 500 * time.Millisecond})
		if err != nil {
			panic(fmt.Sprintf("experiments: tcp endpoint: %v", err))
		}
		tcps[i] = ep
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				tcps[i].SetPeerAddr(types.PartyID(j), tcps[j].Addr())
			}
		}
	}
	var mu sync.Mutex
	counts := make([]int, n)
	clk := clock.NewWall()
	runners := make([]*runtime.Runner, n)
	for i := 0; i < n; i++ {
		i := i
		pid := types.PartyID(i)
		inner := core.NewEngine(core.Config{
			Self:       pid,
			Keys:       pub,
			Priv:       privs[i],
			Beacon:     beacon.NewSimulated(n, pid, pub.GenesisSeed),
			DeltaBound: 100 * time.Millisecond,
			// Honest-only measurement run: trust shares like the simnet
			// sweeps so the aggregating relays exercise CombineVerified.
			Pool: pool.Options{Policy: pool.VerifySharesOnly},
			Hooks: core.Hooks{
				OnCommit: func(*types.Block, time.Duration) {
					mu.Lock()
					counts[i]++
					mu.Unlock()
				},
			},
		})
		g, err := gossip.New(gossip.Config{
			Self: pid, N: n, Fanout: 8, Seed: 1313,
			ShareBatchWindow: 2 * time.Millisecond,
			Aggregate:        true,
			TrustShares:      true,
			Keys:             pub,
		}, inner)
		if err != nil {
			panic(fmt.Sprintf("experiments: gossip: %v", err))
		}
		runners[i] = runtime.NewRunner(g, tcps[i], clk, n)
	}
	start := time.Now()
	for _, r := range runners {
		r.Start()
	}
	deadline := start.Add(2 * time.Minute)
	for {
		mu.Lock()
		minC := counts[0]
		for _, c := range counts {
			if c < minC {
				minC = c
			}
		}
		mu.Unlock()
		if minC >= want || time.Now().After(deadline) {
			commits = minC
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	seconds = time.Since(start).Seconds()
	for i := range runners {
		runners[i].Stop()
		_ = tcps[i].Close()
	}
	if seconds == 0 {
		seconds = 1
	}
	return commits, seconds
}
