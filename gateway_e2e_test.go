package icc

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestGatewayReadYourWrites is the PR's acceptance check: a write
// acknowledged through one party's client carries a commit-index token
// that makes the write visible on EVERY party, and the acknowledgement
// itself never precedes finality.
func TestGatewayReadYourWrites(t *testing.T) {
	const n = 4
	c, err := NewLocalCluster(n, WithDeltaBound(50*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Stop()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	for i := 0; i < 6; i++ {
		writer := i % n
		key := fmt.Sprintf("ryw/%d", i)
		want := fmt.Sprintf("value-%d", i)
		r, err := c.Client(writer).Submit(ctx, Command{
			Client: uint64(100 + i), Seq: 1, Op: OpSet, Key: key, Value: []byte(want),
		})
		if err != nil {
			t.Fatalf("submit via party %d: %v", writer, err)
		}
		// Acks only at finality: when Wait returns, the write must already
		// be in the acknowledging replica's finalized state.
		ack, err := r.Wait(ctx)
		if err != nil {
			t.Fatalf("wait via party %d: %v", writer, err)
		}
		if ack.CommitIndex == 0 {
			t.Fatal("resolved receipt carries no commit index")
		}
		if v, ok := c.KV(writer).Get(key); !ok || string(v) != want {
			t.Fatalf("party %d acked (%s) before applying it: %q %v", writer, key, v, ok)
		}
		// Read-your-writes on every party, including ones that may not
		// have applied the round yet when the read arrives.
		for q := 0; q < n; q++ {
			res, err := c.Client(q).Read(ctx, key, ack.CommitIndex)
			if err != nil {
				t.Fatalf("read %s on party %d with token %d: %v", key, q, ack.CommitIndex, err)
			}
			if !res.Found || string(res.Value) != want {
				t.Fatalf("party %d with token %d does not observe the write: found=%v value=%q",
					q, ack.CommitIndex, res.Found, res.Value)
			}
			if res.Index < ack.CommitIndex {
				t.Fatalf("read released at index %d < token %d", res.Index, ack.CommitIndex)
			}
		}
	}
}

func TestGatewayTypedErrors(t *testing.T) {
	c, err := NewLocalCluster(4,
		WithDeltaBound(50*time.Millisecond),
		WithGatewayBacklog(1),
		WithBehavior(3, CrashFromBirth))
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Stop()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// A crashed-from-birth party's gateway never serves.
	if _, err := c.Client(3).Submit(ctx, Command{Client: 1, Seq: 1, Op: OpSet, Key: "x"}); !errors.Is(err, ErrNotRunning) {
		t.Fatalf("crashed party's client = %v, want ErrNotRunning", err)
	}

	// With a one-command backlog, a second command in the same instant
	// must surface backpressure or duplicate typing, never silence. The
	// first command may finalize between the two calls, so accept a
	// success only for the one submitted first.
	if _, err := c.Client(0).Submit(ctx, Command{Client: 2, Seq: 1, Op: OpSet, Key: "a"}); err != nil {
		t.Fatalf("first submit: %v", err)
	}
	_, err = c.Client(0).Submit(ctx, Command{Client: 2, Seq: 1, Op: OpSet, Key: "a"})
	if err == nil || (!errors.Is(err, ErrDuplicate) && !errors.Is(err, ErrBacklogFull)) {
		t.Fatalf("duplicate resubmit = %v, want ErrDuplicate (or ErrBacklogFull at the bound)", err)
	}
	if _, err := c.Client(0).Submit(ctx, Command{
		Client: 3, Seq: 1, Op: OpSet, Key: "big", Value: make([]byte, 8<<20),
	}); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized submit = %v, want ErrTooLarge", err)
	}

	// After Stop every client refuses with ErrNotRunning.
	c.Stop()
	if _, err := c.Client(0).Submit(ctx, Command{Client: 4, Seq: 1, Op: OpSet, Key: "y"}); !errors.Is(err, ErrNotRunning) {
		t.Fatalf("submit after Stop = %v, want ErrNotRunning", err)
	}
}

// TestGatewayHTTPIngress drives the full stack over real HTTP: the /v1
// API mounts on the same listener as /metrics, a curl-equivalent write
// returns 200 with a token only at finality, and the token gates a read
// on a different party.
func TestGatewayHTTPIngress(t *testing.T) {
	c, err := NewLocalCluster(4,
		WithDeltaBound(50*time.Millisecond),
		WithMetricsAddr("127.0.0.1:0"))
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Stop()
	addr := c.MetricsAddr()
	if addr == "" {
		t.Fatal("no HTTP address")
	}
	client := &http.Client{Timeout: 90 * time.Second}

	res, err := client.Post("http://"+addr+"/v1/submit?party=1", "application/json",
		strings.NewReader(`{"client":7,"seq":1,"op":"set","key":"http-key","value":"http-value"}`))
	if err != nil {
		t.Fatal(err)
	}
	var sub struct {
		Committed   bool    `json:"committed"`
		CommitIndex float64 `json:"commit_index"`
	}
	err = json.NewDecoder(res.Body).Decode(&sub)
	res.Body.Close()
	if err != nil || res.StatusCode != http.StatusOK {
		t.Fatalf("submit status %d err %v", res.StatusCode, err)
	}
	if !sub.Committed || sub.CommitIndex < 1 {
		t.Fatalf("submit response %+v, want committed with token", sub)
	}

	res, err = client.Get(fmt.Sprintf("http://%s/v1/read?party=3&key=http-key&token=%.0f", addr, sub.CommitIndex))
	if err != nil {
		t.Fatal(err)
	}
	var rd struct {
		Found bool   `json:"found"`
		Value string `json:"value"`
	}
	err = json.NewDecoder(res.Body).Decode(&rd)
	res.Body.Close()
	if err != nil || res.StatusCode != http.StatusOK {
		t.Fatalf("read status %d err %v", res.StatusCode, err)
	}
	if !rd.Found || rd.Value != "http-value" {
		t.Fatalf("read response %+v, want the write visible", rd)
	}

	// The gateway instruments feed the same registry /metrics serves.
	snap := c.Metrics()
	if snap.Get("icc_gateway_acked_total") < 1 || snap.Get("icc_gateway_commit_latency_seconds_count") < 1 {
		t.Fatalf("gateway metrics missing from registry: %s", snap)
	}
}
