GO ?= go

.PHONY: build test verify verify2 race vet bench bench-scale chaos

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Tier-1 verify: the invariant every PR must keep green.
verify: build vet test

vet:
	$(GO) vet ./...

# Race-test the concurrency-heavy layers (real goroutines + sockets).
race:
	$(GO) test -race ./internal/obs/... ./internal/transport/... ./internal/runtime/... ./internal/simnet/... ./internal/gossip/... ./internal/pool/... ./internal/verify/... ./internal/backfill/... ./internal/beacon/... ./internal/wal/... ./internal/checkpoint/... ./internal/gateway/... ./internal/statemachine/... ./internal/crypto/aggsig/... ./internal/crypto/bls/...

# Regenerate the evaluation tables and record a machine-readable
# BENCH_<timestamp>.json snapshot in the repo root. The first leg prints
# the certificate-scheme micro-benchmarks (multisig vs BLS
# sign/combine/verify at quorum 9 of 13); 10 iterations keeps the
# ~1 s/op BLS pairing verify affordable.
bench:
	$(GO) test -run '^$$' -bench 'Sign13|Combine13|VerifyAggregate13' -benchtime 10x ./internal/crypto/aggsig ./internal/crypto/multisig
	$(GO) run ./cmd/iccbench -json

# The certificate-scheme chart alone (E14): bytes/party, commits/s, and
# cert wire size for multisig vs BLS at n ∈ {16, 31, 64, 100}.
bench-certscheme:
	$(GO) run ./cmd/iccbench -exp certscheme -json

# The scale-out chart alone (E13): commits/s and bytes/party for
# n ∈ {16, 31, 64, 100}, with the relay-aggregation A/B in the json.
bench-scale:
	$(GO) run ./cmd/iccbench -exp scaleout -json

# Adversary campaign under the race detector: the matrix sweep plus the
# threshold-boundary withholding tests. A failing cell prints the path of
# a replayable JSONL trace; re-run it with
#   go test ./internal/harness -run TestCampaignFailureReplaysByteIdentical
# or feed the path to harness.ReplayTrace / harness.Shrink directly.
chaos:
	$(GO) test -race -count=1 -run 'TestChaosCampaign|TestWithholdExactlyTStillFinalizes|TestWithholdTPlusOneStallsThenRecovers' ./internal/harness

# Tier-2 verify: static analysis plus race detection on the layers where
# goroutines, channels, and sockets actually interleave — and the seeded
# adversary campaign (safety + liveness across the behavior matrix).
verify2: vet race chaos
