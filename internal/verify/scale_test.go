package verify

// Tests for the scale-out admission paths: ShareBundle verification and
// statement-level admission of relay-built aggregate variants.

import (
	"testing"
	"time"

	"icc/internal/crypto/aggsig"
	"icc/internal/crypto/hash"
	"icc/internal/obs"
	"icc/internal/pool"
	"icc/internal/transport"
	"icc/internal/types"
)

func (f *fixture) fshare(round types.Round, proposer, signer types.PartyID, blockHash hash.Digest) *types.FinalizationShare {
	msg := types.SigningBytes(round, proposer, blockHash)
	s := f.privs[signer].Final.Sign(types.DomainFinalization, msg)
	return &types.FinalizationShare{Round: round, Proposer: proposer, BlockHash: blockHash,
		Signer: signer, Sig: s.Signature}
}

// notarizationBy builds a notarization over exactly the given signer
// subset, so two calls with different subsets yield byte-distinct
// certificates for the same statement.
func (f *fixture) notarizationBy(t testing.TB, round types.Round, proposer types.PartyID, bh hash.Digest, signers []int) *types.Notarization {
	t.Helper()
	msg := types.SigningBytes(round, proposer, bh)
	shares := make([]*aggsig.Share, 0, len(signers))
	for _, i := range signers {
		shares = append(shares, f.privs[i].Notary.Sign(types.DomainNotarization, msg))
	}
	agg, err := f.pub.Notary.Combine(types.DomainNotarization, msg, shares)
	if err != nil {
		t.Fatal(err)
	}
	return &types.Notarization{Round: round, Proposer: proposer, BlockHash: bh, Agg: agg.Encode()}
}

func TestPipelineShareBundleFiltering(t *testing.T) {
	f := newFixture(t, 4)
	reg := obs.NewRegistry()
	p := New(pool.NewVerifier(f.pub, pool.VerifyFull), Options{Workers: 1, Registry: reg})
	defer p.Close()

	bh := hash.SumUint64(hash.DomainBlock, 1)
	g1, g3 := f.nshare(1, 0, 1, bh), f.nshare(1, 0, 3, bh)
	fs := f.fshare(1, 0, 2, bh)
	b := &types.ShareBundle{
		Notar: []types.ShareGroup{{
			Round: 1, Proposer: 0, BlockHash: bh,
			Signers: []types.PartyID{g1.Signer, 2, g3.Signer},
			Sigs:    [][]byte{g1.Sig, make([]byte, 64), g3.Sig}, // middle sig forged
		}},
		Final: []types.ShareGroup{{
			Round: 1, Proposer: 0, BlockHash: bh,
			Signers: []types.PartyID{fs.Signer},
			Sigs:    [][]byte{fs.Sig},
		}},
		Beacon: []*types.BeaconShare{{Round: 1, Signer: 0, Share: []byte{1, 2, 3}}},
	}
	p.Submit(transport.Envelope{From: 2, Msg: b})
	got := drain(t, p, 1, 5*time.Second)
	out, ok := got[0].Msg.(*types.ShareBundle)
	if !ok {
		t.Fatalf("delivered %#v, want ShareBundle", got[0].Msg)
	}
	if len(out.Notar) != 1 || len(out.Notar[0].Signers) != 2 {
		t.Fatalf("notar group not filtered to the two valid shares: %#v", out.Notar)
	}
	if out.Notar[0].Signers[0] != 1 || out.Notar[0].Signers[1] != 3 {
		t.Fatalf("wrong surviving signers %v", out.Notar[0].Signers)
	}
	if len(out.Final) != 1 || len(out.Beacon) != 1 {
		t.Fatalf("valid final/beacon sections dropped: %#v", out)
	}
	snap := reg.Snapshot()
	if snap[`icc_verify_rejects_total{reason="bad_share"}`] != 1 {
		t.Fatalf("rejects = %v, want 1", snap[`icc_verify_rejects_total{reason="bad_share"}`])
	}

	// A bundle of nothing but forged shares is dropped whole.
	p.Submit(transport.Envelope{From: 2, Msg: &types.ShareBundle{
		Notar: []types.ShareGroup{{Round: 2, Proposer: 0, BlockHash: bh,
			Signers: []types.PartyID{1}, Sigs: [][]byte{make([]byte, 64)}}},
	}})
	select {
	case env := <-p.Out():
		t.Fatalf("all-forged bundle delivered: %#v", env.Msg)
	case <-time.After(200 * time.Millisecond):
	}

	// A bundled share that verified enters the digest cache under its
	// individual encoding: the same share re-arriving bare is a hit.
	p.Submit(transport.Envelope{From: 3, Msg: g1})
	drain(t, p, 1, 5*time.Second)
	if reg.Snapshot()["icc_verify_cache_hits_total"] < 1 {
		t.Fatal("bare redelivery of a bundled share missed the digest cache")
	}
}

// TestStatementLevelAdmission pins the live extension of chain-aware
// admission: once one certificate for a statement fully verifies, a
// byte-distinct certificate over a different signer subset of the same
// statement is admitted without re-verification.
func TestStatementLevelAdmission(t *testing.T) {
	f := newFixture(t, 4)
	reg := obs.NewRegistry()
	p := New(pool.NewVerifier(f.pub, pool.VerifyFull), Options{Workers: 1, Registry: reg})
	defer p.Close()

	bh := hash.SumUint64(hash.DomainBlock, 7)
	certA := f.notarizationBy(t, 7, 0, bh, []int{0, 1, 2})
	certB := f.notarizationBy(t, 7, 0, bh, []int{1, 2, 3})

	p.Submit(transport.Envelope{From: 1, Msg: certA})
	drain(t, p, 1, 5*time.Second)
	snap := reg.Snapshot()
	if snap["icc_verify_verified_total"] != 1 || snap["icc_verify_chain_admitted_total"] != 0 {
		t.Fatalf("after certA: verified=%v chainAdmit=%v", snap["icc_verify_verified_total"], snap["icc_verify_chain_admitted_total"])
	}

	// Different signer subset, same statement: admitted on statement
	// identity, no signature work.
	p.Submit(transport.Envelope{From: 2, Msg: certB})
	got := drain(t, p, 1, 5*time.Second)
	if nz, ok := got[0].Msg.(*types.Notarization); !ok || nz.Round != 7 {
		t.Fatalf("delivered %#v", got[0].Msg)
	}
	snap = reg.Snapshot()
	if snap["icc_verify_chain_admitted_total"] != 1 {
		t.Fatalf("chainAdmit = %v, want 1", snap["icc_verify_chain_admitted_total"])
	}
	if snap["icc_verify_verified_total"] != 1 {
		t.Fatalf("verified = %v, want still 1 (no re-verification)", snap["icc_verify_verified_total"])
	}

	// A byte-identical redelivery of certB takes the statement path
	// again — still zero signature work.
	p.Submit(transport.Envelope{From: 3, Msg: certB})
	drain(t, p, 1, 5*time.Second)
	snap = reg.Snapshot()
	if snap["icc_verify_chain_admitted_total"] != 2 || snap["icc_verify_verified_total"] != 1 {
		t.Fatalf("redelivery: chainAdmit=%v verified=%v, want 2/1",
			snap["icc_verify_chain_admitted_total"], snap["icc_verify_verified_total"])
	}

	// A certificate for a DIFFERENT statement (other block hash) gets no
	// free pass: forged bytes are rejected in full.
	other := hash.SumUint64(hash.DomainBlock, 8)
	forged := &types.Notarization{Round: 7, Proposer: 0, BlockHash: other, Agg: certA.Agg}
	p.Submit(transport.Envelope{From: 2, Msg: forged})
	deadline := time.After(2 * time.Second)
	for {
		s := reg.Snapshot()
		if s[`icc_verify_rejects_total{reason="bad_aggregate"}`] == 1 {
			break
		}
		select {
		case env := <-p.Out():
			t.Fatalf("forged-statement certificate delivered: %#v", env.Msg)
		case <-deadline:
			t.Fatalf("forged certificate not rejected: %v", reg.Snapshot())
		case <-time.After(10 * time.Millisecond):
		}
	}

	// Finalizations key a distinct statement space: a finalization for
	// the notarized statement still verifies in full (here: rejected,
	// the Agg bytes sign the notarization domain).
	p.Submit(transport.Envelope{From: 2, Msg: &types.Finalization{Round: 7, Proposer: 0, BlockHash: bh, Agg: certA.Agg}})
	deadline = time.After(2 * time.Second)
	for reg.Snapshot()[`icc_verify_rejects_total{reason="bad_aggregate"}`] != 2 {
		select {
		case env := <-p.Out():
			t.Fatalf("cross-kind certificate admitted: %#v", env.Msg)
		case <-deadline:
			t.Fatalf("cross-kind certificate not rejected: %v", reg.Snapshot())
		case <-time.After(10 * time.Millisecond):
		}
	}
}

// TestShareBundleShedWhileBehind: a lagging party sheds bundled shares
// beyond the admission window exactly like bare ones.
func TestShareBundleShedWhileBehind(t *testing.T) {
	f := newFixture(t, 4)
	reg := obs.NewRegistry()
	p := New(pool.NewVerifier(f.pub, pool.VerifyFull), Options{Workers: 1, Registry: reg})
	defer p.Close()

	// Drive the frontier far ahead of the (round-0) engine.
	bh := hash.SumUint64(hash.DomainBlock, 200)
	p.Submit(transport.Envelope{From: 1, Msg: f.notarizationBy(t, 200, 0, bh, []int{0, 1, 2})})
	drain(t, p, 1, 5*time.Second)
	if p.Frontier() != 200 {
		t.Fatalf("frontier = %d", p.Frontier())
	}

	tip := f.nshare(200, 0, 1, bh)
	b := &types.ShareBundle{
		Notar: []types.ShareGroup{{Round: 200, Proposer: 0, BlockHash: bh,
			Signers: []types.PartyID{tip.Signer}, Sigs: [][]byte{tip.Sig}}},
		Beacon: []*types.BeaconShare{{Round: 10, Signer: 2, Share: []byte{9}}},
	}
	p.Submit(transport.Envelope{From: 1, Msg: b})
	got := drain(t, p, 1, 5*time.Second)
	out, ok := got[0].Msg.(*types.ShareBundle)
	if !ok {
		t.Fatalf("delivered %#v", got[0].Msg)
	}
	if len(out.Notar) != 0 || len(out.Beacon) != 1 {
		t.Fatalf("tip share not shed / in-window beacon dropped: %#v", out)
	}
	if reg.Snapshot()[`icc_verify_rejects_total{reason="behind"}`] != 1 {
		t.Fatalf("behind rejects = %v, want 1", reg.Snapshot()[`icc_verify_rejects_total{reason="behind"}`])
	}
}
