// Package beacon implements the ICC random beacon (paper §2.3, §3.3):
// a sequence R_0, R_1, R_2, … where R_0 is a fixed public value and R_k
// is the unique threshold signature on (k, R_{k−1}). Each round's beacon
// value seeds a pseudorandom permutation of the parties that assigns
// ranks; the rank-0 party is the round leader.
//
// Because the threshold is t+1, the t corrupt parties can never compute
// R_k by themselves (unpredictability), while any t+1 parties — hence
// the honest parties alone — always can (liveness).
package beacon

import (
	"crypto/rand"
	"errors"
	"fmt"
	"sync"

	"icc/internal/crypto/hash"
	"icc/internal/crypto/thresig"
	"icc/internal/types"
)

// ErrPruned reports that a share was requested for a round the beacon
// has already pruned. Once Prune(before) runs, share material below the
// watermark is gone by contract; re-signing it would quietly resurrect
// state the caller asked to discard, so requests fail typed instead.
var ErrPruned = errors.New("beacon: round pruned")

// Beacon tracks beacon values and shares for one party. It is safe for
// concurrent use: the engine event loop and the runtime backfill worker
// (which signs catch-up shares off that loop) share one instance.
type Beacon struct {
	pub  *thresig.PublicInfo
	sk   thresig.SecretShare
	self types.PartyID

	mu sync.Mutex

	// values[k] is R_k's signature; the genesis entry (k=0) is a fixed
	// pseudo-signature derived from the genesis seed.
	values map[types.Round]*thresig.Signature
	// digests[k] caches H(R_k).
	digests map[types.Round]hash.Digest
	// shares[k][p] holds received shares for round k — verified lazily,
	// because verification needs R_{k−1}, which a lagging party may not
	// yet have.
	shares map[types.Round]map[types.PartyID]*thresig.SigShare
	// perms caches round permutations.
	perms map[types.Round][]types.PartyID

	// own caches this party's signed shares so stall re-broadcasts and
	// catch-up batches never repeat the EC scalar multiplication.
	own *shareCache
	// prunedBefore is the Prune watermark: own-share requests below it
	// fail with ErrPruned instead of re-signing discarded material.
	prunedBefore types.Round

	genesis hash.Digest
}

// New creates a beacon tracker. The genesis seed must be identical across
// all parties (it is part of the public key material).
func New(pub *thresig.PublicInfo, sk thresig.SecretShare, self types.PartyID, genesisSeed []byte) *Beacon {
	b := &Beacon{
		pub:     pub,
		sk:      sk,
		self:    self,
		values:  make(map[types.Round]*thresig.Signature),
		digests: make(map[types.Round]hash.Digest),
		shares:  make(map[types.Round]map[types.PartyID]*thresig.SigShare),
		perms:   make(map[types.Round][]types.PartyID),
		own:     newShareCache(0),
		genesis: hash.Sum(hash.DomainBeacon, genesisSeed),
	}
	b.digests[0] = b.genesis
	return b
}

// SetShareCacheSize resizes the own-share cache: 0 selects
// DefaultShareCacheSize, negative disables caching. Call before the
// beacon is shared across goroutines; existing entries are discarded.
func (b *Beacon) SetShareCacheSize(n int) {
	b.mu.Lock()
	b.own = newShareCache(n)
	b.mu.Unlock()
}

// message returns the byte string the round-k beacon signs: (k, R_{k−1}).
// Returns false if R_{k−1} is not yet known. Caller holds b.mu.
func (b *Beacon) message(k types.Round) ([]byte, bool) {
	if k == 0 {
		return nil, false
	}
	prev, ok := b.digests[k-1]
	if !ok {
		return nil, false
	}
	e := types.NewEncoder(8 + hash.Size)
	e.U64(uint64(k))
	e.Bytes32(prev)
	return e.Bytes(), true
}

// ShareForRound produces this party's share of the round-k beacon,
// consulting the own-share cache first and caching fresh signatures. It
// fails if R_{k−1} is not yet known, and with ErrPruned if round k is
// below the prune watermark.
func (b *Beacon) ShareForRound(k types.Round) (*types.BeaconShare, error) {
	b.mu.Lock()
	if k < b.prunedBefore {
		b.mu.Unlock()
		return nil, fmt.Errorf("beacon: share for round %d: %w", k, ErrPruned)
	}
	if sh, ok := b.own.get(k); ok {
		b.mu.Unlock()
		return sh, nil
	}
	msg, ok := b.message(k)
	b.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("beacon: R_%d not yet known, cannot sign R_%d", k-1, k)
	}
	// Sign outside the lock: the scalar multiplication takes milliseconds
	// and must not stall concurrent beacon readers (the engine loop).
	share, err := thresig.Sign(rand.Reader, b.sk, msg)
	if err != nil {
		return nil, fmt.Errorf("beacon: signing share: %w", err)
	}
	sh := &types.BeaconShare{Round: k, Signer: b.self, Share: share.Encode()}
	b.mu.Lock()
	if k >= b.prunedBefore {
		b.own.put(k, sh)
	}
	b.mu.Unlock()
	return sh, nil
}

// CachedShareForRound returns this party's round-k share only if it is
// already cached — it never signs. The engine uses it to keep catch-up
// responses cheap: cache hits travel inline, misses are deferred to the
// async backfill path.
func (b *Beacon) CachedShareForRound(k types.Round) (*types.BeaconShare, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if k < b.prunedBefore {
		return nil, false
	}
	return b.own.get(k)
}

// AddShare records a received share. Verification is deferred to Reveal
// if R_{k−1} is still unknown; conspicuously malformed shares are
// rejected immediately. The bool reports whether the share was newly
// admitted (false for duplicates).
func (b *Beacon) AddShare(s *types.BeaconShare) (bool, error) {
	if s.Signer < 0 || int(s.Signer) >= b.pub.N {
		return false, fmt.Errorf("beacon: signer %d out of range", s.Signer)
	}
	if s.Round == 0 {
		return false, fmt.Errorf("beacon: share for genesis round")
	}
	decoded, err := thresig.DecodeSigShare(int(s.Signer), s.Share)
	if err != nil {
		return false, fmt.Errorf("beacon: malformed share: %w", err)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	m := b.shares[s.Round]
	if m == nil {
		m = make(map[types.PartyID]*thresig.SigShare)
		b.shares[s.Round] = m
	}
	if _, dup := m[s.Signer]; dup {
		return false, nil
	}
	m[s.Signer] = decoded
	return true, nil
}

// ShareCount returns the number of (not yet verified) shares held for a
// round.
func (b *Beacon) ShareCount(k types.Round) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.shares[k])
}

// Have reports whether R_k is known.
func (b *Beacon) Have(k types.Round) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	_, ok := b.digests[k]
	return ok
}

// Reveal attempts to compute R_k from the shares held. It returns the
// digest H(R_k) and true on success. Invalid shares are discarded in the
// process (combining verifies each share against the public material).
func (b *Beacon) Reveal(k types.Round) (hash.Digest, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if d, ok := b.digests[k]; ok {
		return d, true
	}
	msg, ok := b.message(k)
	if !ok {
		return hash.Digest{}, false
	}
	m := b.shares[k]
	if len(m) < b.pub.Threshold {
		return hash.Digest{}, false
	}
	// Deterministic order: ascending party index.
	list := make([]*thresig.SigShare, 0, len(m))
	for p := 0; p < b.pub.N; p++ {
		if s, ok := m[types.PartyID(p)]; ok {
			list = append(list, s)
		}
	}
	sigv, err := b.pub.Combine(msg, list)
	if err != nil {
		return hash.Digest{}, false
	}
	b.values[k] = sigv
	d := sigv.Digest()
	b.digests[k] = d
	return d, true
}

// Digest returns H(R_k) if known.
func (b *Beacon) Digest(k types.Round) (hash.Digest, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	d, ok := b.digests[k]
	return d, ok
}

// Permutation returns the round-k ranking permutation:
// perm[rank] = party. The permutation is a deterministic Fisher–Yates
// shuffle seeded by H(R_k), so every party that knows R_k derives the
// same ranking (paper §3.3).
func (b *Beacon) Permutation(k types.Round) ([]types.PartyID, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.permutationLocked(k)
}

func (b *Beacon) permutationLocked(k types.Round) ([]types.PartyID, bool) {
	if p, ok := b.perms[k]; ok {
		return p, true
	}
	d, ok := b.digests[k]
	if !ok {
		return nil, false
	}
	p := PermutationFromDigest(d, b.pub.N)
	b.perms[k] = p
	return p, true
}

// RankOf returns party p's rank in round k.
func (b *Beacon) RankOf(k types.Round, p types.PartyID) (types.Rank, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	perm, ok := b.permutationLocked(k)
	if !ok {
		return 0, false
	}
	for r, q := range perm {
		if q == p {
			return types.Rank(r), true
		}
	}
	return 0, false
}

// Leader returns the rank-0 party of round k.
func (b *Beacon) Leader(k types.Round) (types.PartyID, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	perm, ok := b.permutationLocked(k)
	if !ok {
		return 0, false
	}
	return perm[0], true
}

// Prune discards share, permutation, and own-share state for rounds
// before `before`, and raises the watermark below which own-share
// requests fail with ErrPruned. Beacon digests are kept (they chain).
func (b *Beacon) Prune(before types.Round) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for k := range b.shares {
		if k < before {
			delete(b.shares, k)
		}
	}
	for k := range b.perms {
		if k < before {
			delete(b.perms, k)
		}
	}
	for k := range b.values {
		if k < before {
			delete(b.values, k)
		}
	}
	b.own.pruneBefore(before)
	if before > b.prunedBefore {
		b.prunedBefore = before
	}
}

// InstallDigest seeds the digest chain with an externally verified
// H(R_k), typically from a certified checkpoint. The digest chains —
// the round-(k+1) beacon signs (k+1, H(R_k)) — so installing round k's
// digest is exactly what a restored party needs to verify and produce
// shares from round k+1 onward. An already-known digest is kept (the
// chain is unique, so they cannot disagree among honest inputs).
func (b *Beacon) InstallDigest(k types.Round, d hash.Digest) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.digests[k]; !ok {
		b.digests[k] = d
	}
}

// CachedShares reports the number of own shares currently cached (for
// tests and capacity tuning).
func (b *Beacon) CachedShares() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.own.len()
}

// PermutationFromDigest derives a permutation of [0, n) from a digest via
// Fisher–Yates driven by a hash-based deterministic stream. Exported for
// tests and for adversary tooling that needs to predict rankings.
func PermutationFromDigest(d hash.Digest, n int) []types.PartyID {
	perm := make([]types.PartyID, n)
	for i := range perm {
		perm[i] = types.PartyID(i)
	}
	stream := newHashStream(d)
	for i := n - 1; i > 0; i-- {
		j := int(stream.uintn(uint64(i + 1)))
		perm[i], perm[j] = perm[j], perm[i]
	}
	return perm
}

// hashStream is a deterministic PRNG: SHA-256(digest, counter) blocks.
// Unlike math/rand it is guaranteed stable across platforms and Go
// versions, so rankings derived from a beacon value never drift.
type hashStream struct {
	seed    hash.Digest
	counter uint64
	buf     []byte
}

func newHashStream(seed hash.Digest) *hashStream {
	return &hashStream{seed: seed}
}

func (s *hashStream) next8() uint64 {
	if len(s.buf) < 8 {
		d := hash.Sum(hash.DomainRanking, s.seed[:], []byte{
			byte(s.counter >> 56), byte(s.counter >> 48), byte(s.counter >> 40), byte(s.counter >> 32),
			byte(s.counter >> 24), byte(s.counter >> 16), byte(s.counter >> 8), byte(s.counter),
		})
		s.counter++
		s.buf = append(s.buf, d[:]...)
	}
	v := uint64(0)
	for i := 0; i < 8; i++ {
		v = v<<8 | uint64(s.buf[i])
	}
	s.buf = s.buf[8:]
	return v
}

// uintn returns a uniform value in [0, n) by rejection sampling.
func (s *hashStream) uintn(n uint64) uint64 {
	if n == 0 {
		return 0
	}
	limit := (^uint64(0) / n) * n
	for {
		v := s.next8()
		if v < limit {
			return v % n
		}
	}
}
