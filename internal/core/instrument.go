package core

import (
	"time"

	"icc/internal/obs"
	"icc/internal/types"
)

// ObservedHooks returns base with every per-phase hook additionally
// reporting into ob: round entry/notarization, proposal, share issuance,
// beacon-recovery timing, commits, and resync triggers. base's own
// callbacks still run (after the observer update). A nil ob returns base
// unchanged, so callers wire observability unconditionally.
func ObservedHooks(ob *obs.Observer, base Hooks) Hooks {
	if ob == nil {
		return base
	}
	return Hooks{
		OnEnterRound: func(k types.Round, now time.Duration) {
			ob.EnterRound(uint64(k), now)
			if base.OnEnterRound != nil {
				base.OnEnterRound(k, now)
			}
		},
		OnBeaconRecovered: func(k types.Round, waited, now time.Duration) {
			ob.BeaconRecovered(uint64(k), waited)
			if base.OnBeaconRecovered != nil {
				base.OnBeaconRecovered(k, waited, now)
			}
		},
		OnPropose: func(k types.Round, now time.Duration) {
			ob.Propose(uint64(k), now)
			if base.OnPropose != nil {
				base.OnPropose(k, now)
			}
		},
		OnNotarizationShare: func(k types.Round, now time.Duration) {
			ob.NotarizationShare(uint64(k), now)
			if base.OnNotarizationShare != nil {
				base.OnNotarizationShare(k, now)
			}
		},
		OnFinalizationShare: func(k types.Round, now time.Duration) {
			ob.FinalizationShare(uint64(k), now)
			if base.OnFinalizationShare != nil {
				base.OnFinalizationShare(k, now)
			}
		},
		OnFinishRound: func(k types.Round, now time.Duration) {
			ob.FinishRound(uint64(k), now)
			if base.OnFinishRound != nil {
				base.OnFinishRound(k, now)
			}
		},
		OnRankDisqualified: func(k types.Round, rank types.Rank, now time.Duration) {
			ob.RankDisqualified(uint64(k), int(rank), now)
			if base.OnRankDisqualified != nil {
				base.OnRankDisqualified(k, rank, now)
			}
		},
		OnCommit: func(b *types.Block, now time.Duration) {
			ob.Commit(uint64(b.Round), len(b.Payload), now)
			if base.OnCommit != nil {
				base.OnCommit(b, now)
			}
		},
		OnResync: func(k types.Round, now time.Duration) {
			ob.Resync(uint64(k), now)
			if base.OnResync != nil {
				base.OnResync(k, now)
			}
		},
		OnBackfill: func(peer types.PartyID, inline, deferred int, now time.Duration) {
			ob.Backfill(int(peer), inline, deferred, now)
			if base.OnBackfill != nil {
				base.OnBackfill(peer, inline, deferred, now)
			}
		},
		OnRejectedMessage: func(from types.PartyID, reason string) {
			ob.RejectedMessage(reason)
			if base.OnRejectedMessage != nil {
				base.OnRejectedMessage(from, reason)
			}
		},
		OnCheckpoint: func(k types.Round, now time.Duration) {
			ob.Checkpoint(uint64(k), now)
			if base.OnCheckpoint != nil {
				base.OnCheckpoint(k, now)
			}
		},
		OnCheckpointInstalled: func(k types.Round, now time.Duration) {
			ob.CheckpointInstalled(uint64(k), now)
			if base.OnCheckpointInstalled != nil {
				base.OnCheckpointInstalled(k, now)
			}
		},
		OnCheckpointServed: func(peer types.PartyID, k types.Round, now time.Duration) {
			ob.CheckpointServed(int(peer), uint64(k), now)
			if base.OnCheckpointServed != nil {
				base.OnCheckpointServed(peer, k, now)
			}
		},
		OnResyncLost: func(gap types.Round, now time.Duration) {
			ob.ResyncLost(uint64(gap), now)
			if base.OnResyncLost != nil {
				base.OnResyncLost(gap, now)
			}
		},
	}
}
