// Package types defines the core protocol vocabulary of the ICC
// reproduction — party identities, rounds, ranks, blocks, and every wire
// message the protocols exchange — together with a hand-rolled binary
// codec. Artifact classification (authentic / valid / notarized /
// finalized, paper §3.4) lives in the pool package; this package is pure
// data.
package types

import (
	"fmt"
	"time"
)

// PartyID identifies one of the n parties, indexed from 0.
type PartyID int

// Round is a protocol round number; round 0 is the genesis (root) round,
// real rounds start at 1 (paper §3.4).
type Round uint64

// Rank is a party's position in the round's random permutation;
// rank 0 is the round leader (paper §3.3).
type Rank int

// String implements fmt.Stringer for readable traces.
func (p PartyID) String() string { return fmt.Sprintf("P%d", int(p)) }

// MaxFaults returns the largest t with t < n/3, the corruption bound the
// ICC protocols tolerate (paper §1).
func MaxFaults(n int) int {
	if n < 1 {
		return 0
	}
	return (n - 1) / 3
}

// NotaryQuorum returns n−t, the number of signature shares required to
// form a notarization or finalization (paper §3.2: (t, n−t, n) schemes).
func NotaryQuorum(n int) int { return n - MaxFaults(n) }

// BeaconQuorum returns t+1, the number of beacon shares required to
// reconstruct a beacon value (paper §3.2: (t, t+1, n) scheme).
func BeaconQuorum(n int) int { return MaxFaults(n) + 1 }

// CheckpointQuorum returns t+1, the number of checkpoint signature
// shares that make a checkpoint certificate self-authenticating: any
// t+1 set contains at least one honest signer, and an honest party only
// signs a checkpoint commitment for state it derived from the finalized
// chain.
func CheckpointQuorum(n int) int { return MaxFaults(n) + 1 }

// DelayFunc maps a proposer rank to a delay, the shape of the Δprop and
// Δntry delay functions of the Tree-Building Subprotocol (paper §3.5).
// Implementations must be non-decreasing in the rank.
type DelayFunc func(r Rank) time.Duration

// StandardDelays returns the recommended Δprop and Δntry of paper eq. (2):
//
//	Δprop(r) = 2·Δbnd·r
//	Δntry(r) = 2·Δbnd·r + ε
//
// The ε "governor" keeps the protocol from running too fast; it may be 0.
func StandardDelays(deltaBound, epsilon time.Duration) (dprop, dntry DelayFunc) {
	dprop = func(r Rank) time.Duration { return 2 * deltaBound * time.Duration(r) }
	dntry = func(r Rank) time.Duration { return 2*deltaBound*time.Duration(r) + epsilon }
	return dprop, dntry
}
