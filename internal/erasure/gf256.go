// Package erasure implements systematic Reed–Solomon erasure codes over
// GF(2^8), built from scratch: any k of the n coded shards reconstruct
// the data. It is the coding substrate of ICC2's reliable-broadcast
// subprotocol (paper §1: "a subprotocol based on erasure codes",
// following the approach introduced by [11]).
package erasure

// GF(2^8) arithmetic with the AES-adjacent primitive polynomial
// x^8 + x^4 + x^3 + x^2 + 1 (0x11d), precomputed exp/log tables.

var (
	gfExp [512]byte
	gfLog [256]byte
)

// initTables fills the exp/log tables. Called from NewCode via
// tablesOnce; kept out of package init per style guidance.
func initTables() {
	x := byte(1)
	for i := 0; i < 255; i++ {
		gfExp[i] = x
		gfLog[x] = byte(i)
		// multiply x by the generator 2 in GF(2^8)/0x11d
		carry := x&0x80 != 0
		x <<= 1
		if carry {
			x ^= 0x1d
		}
	}
	for i := 255; i < 512; i++ {
		gfExp[i] = gfExp[i-255]
	}
}

func gfMul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return gfExp[int(gfLog[a])+int(gfLog[b])]
}

func gfDiv(a, b byte) byte {
	if b == 0 {
		panic("erasure: division by zero in GF(256)")
	}
	if a == 0 {
		return 0
	}
	return gfExp[int(gfLog[a])+255-int(gfLog[b])]
}

func gfInv(a byte) byte { return gfDiv(1, a) }

// mulRowInto computes dst = coeff * src (element-wise GF multiply),
// XOR-accumulated into dst.
func mulRowInto(dst, src []byte, coeff byte) {
	if coeff == 0 {
		return
	}
	if coeff == 1 {
		for i, v := range src {
			dst[i] ^= v
		}
		return
	}
	logC := int(gfLog[coeff])
	for i, v := range src {
		if v != 0 {
			dst[i] ^= gfExp[logC+int(gfLog[v])]
		}
	}
}
