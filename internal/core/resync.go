package core

import (
	"fmt"
	"time"

	"icc/internal/crypto/hash"
	"icc/internal/engine"
	"icc/internal/types"
)

// Resynchronisation layer. The ICC protocol as written is quiescent:
// every artifact is broadcast exactly once, which suffices under the
// paper's eventual-delivery assumption (§1) but deadlocks the moment a
// message is genuinely lost — a TCP partition black-holes frames, a
// crashed-and-recovered process has a hole in its pool, a chaos wrapper
// drops packets. The protocol's only built-in redundancy is one round
// deep (a round-k proposal bundle carries the round-(k−1) notarization),
// so any deeper loss wedges the party, and with it potentially the whole
// cluster.
//
// The mechanism here restores liveness without touching safety (all
// retransmitted artifacts carry their original signatures and re-enter
// pools through the same verification paths):
//
//   - Stall detection: whenever the engine's round has not changed for
//     ResyncInterval, it sends every peer a Status (its round and
//     finalization frontier) bundled with the artifacts of its current
//     round — blocks, authenticators, notarization/finalization shares,
//     its own beacon shares, the previous round's notarized block, and
//     its latest finalization. Two halves of a healed partition unwedge
//     each other this way within one interval.
//
//   - Catch-up: a party receiving a Status from a peer that is more than
//     one round behind answers with a batch of up to ResyncBatch rounds
//     of notarized blocks (block + notarization + this party's own
//     beacon share per round) plus its latest finalization. The laggard
//     replays these through the ordinary clauses — a notarization in the
//     pool finishes a round instantly — and repeats its Status while it
//     remains behind, closing any gap batch by batch. Responses are
//     rate-limited per requesting peer to one per ResyncInterval.
//     Assembly is split (catchup.go): pool artifacts and cached beacon
//     shares go out inline; share rounds missing from the own-share
//     cache are enqueued to a CatchupProvider that signs them off the
//     engine loop and unicasts them separately (or, with no provider,
//     signed synchronously — the deterministic simnet/harness path).
//
// Everything travels as unicast bundles rather than broadcasts so that
// content-addressed dissemination layers (gossip's seen-set) cannot
// deduplicate the retransmission away.

// touchResync records protocol progress: the stall timer restarts.
func (e *Engine) touchResync(now time.Duration) {
	if e.cfg.ResyncInterval > 0 {
		e.resyncAt = now + e.cfg.ResyncInterval
	}
}

// ResyncLostError reports an unrecoverable lag: the gap to the
// cluster's finalization frontier exceeds the artifact retention
// horizon and no checkpoint path is configured, so Status polling can
// never close it. The only ways forward are a checkpoint transfer
// (configure CheckpointInterval cluster-wide) or re-seeding the node.
type ResyncLostError struct {
	Round      types.Round // the node's stuck working round
	Frontier   types.Round // highest finalized round observed in the cluster
	PruneDepth types.Round // the retention horizon that was exceeded
}

func (e *ResyncLostError) Error() string {
	return fmt.Sprintf("resync lost: round %d is %d behind the finalized frontier %d, beyond the prune horizon %d with no checkpoint path",
		e.Round, e.Frontier-e.Round, e.Frontier, e.PruneDepth)
}

// ResyncLost returns a *ResyncLostError when the engine has detected an
// unrecoverable lag, nil otherwise. Surfaced by node status endpoints.
func (e *Engine) ResyncLost() error {
	if !e.lost {
		return nil
	}
	return &ResyncLostError{Round: e.round, Frontier: e.finalSeen, PruneDepth: e.cfg.PruneDepth}
}

// maybeResync fires the stall handler when the round has been stuck for
// a full interval.
func (e *Engine) maybeResync(now time.Duration) {
	if e.cfg.ResyncInterval <= 0 || now < e.resyncAt {
		return
	}
	e.resyncAt = now + e.cfg.ResyncInterval
	// Behind-prune-horizon detection: once the gap to the cluster's
	// finalization frontier exceeds PruneDepth, every peer has pruned the
	// artifacts we need, and without a checkpoint path the Status poll
	// below degenerates into an infinite no-op loop. Flag it once and go
	// quiet instead. With checkpointing configured the poll stays on —
	// the same Status now solicits a checkpoint transfer.
	if e.cfg.PruneDepth > 0 && e.finalSeen > e.round+e.cfg.PruneDepth && e.cfg.CheckpointInterval <= 0 {
		if !e.lost {
			e.lost = true
			if e.cfg.Hooks.OnResyncLost != nil {
				e.cfg.Hooks.OnResyncLost(e.finalSeen-e.round, now)
			}
		}
		return
	}
	e.lost = false
	e.statusSeq++
	// Report the finalization frontier capped below the working round.
	// After a jump-commit (tryCommitRound finalizing via a chain that
	// reaches past the round being replayed) kmax can exceed round; a
	// responder skips beacon shares for rounds ≤ Finalized (the laggard
	// traversed those beacons), and an uncapped report would starve the
	// beacon replay of the very shares it still needs. Round is uint64,
	// so the cap must clamp at zero: `e.round - 1` for a party stalled
	// before entering round 1 would wrap to 2^64−1 and make responders
	// skip every beacon share.
	fin := e.kmax
	if fin >= e.round {
		if e.round == 0 {
			fin = 0
		} else {
			fin = e.round - 1
		}
	}
	msgs := []types.Message{&types.Status{Round: e.round, Finalized: fin, Seq: e.statusSeq}}
	// Our beacon shares for the current round and (once the round's own
	// beacon is known) the next — the pipelined share of tryEnterRound
	// may have been lost.
	if sh, err := e.cfg.Beacon.ShareForRound(e.round); err == nil {
		msgs = append(msgs, sh)
	}
	if e.inRound {
		if sh, err := e.cfg.Beacon.ShareForRound(e.round + 1); err == nil {
			msgs = append(msgs, sh)
		}
	}
	// The previous round's notarized block, for peers one round behind.
	if h, ok := e.pool.NotarizedInRound(e.round - 1); ok {
		if b := e.pool.Block(h); b != nil {
			msgs = append(msgs, &types.BlockMsg{Block: b})
		}
		if nz := e.pool.Notarization(h); nz != nil {
			msgs = append(msgs, nz)
		}
	}
	// Everything we hold for the current round.
	for _, h := range e.pool.BlocksInRound(e.round) {
		if b := e.pool.Block(h); b != nil {
			msgs = append(msgs, &types.BlockMsg{Block: b})
		}
		if a := e.pool.Authenticator(h); a != nil {
			msgs = append(msgs, a)
		}
		if nz := e.pool.Notarization(h); nz != nil {
			msgs = append(msgs, nz)
		}
		e.pool.ForEachNotarShareMessage(h, func(ns *types.NotarizationShare) {
			msgs = append(msgs, ns)
		})
		e.pool.ForEachFinalShareMessage(h, func(fs *types.FinalizationShare) {
			msgs = append(msgs, fs)
		})
	}
	// Our finalization frontier, so laggards learn what is settled.
	if e.lastFinalHash != (hash.Digest{}) {
		if f := e.pool.Finalization(e.lastFinalHash); f != nil {
			msgs = append(msgs, f)
		}
	}
	// Resync marks the bundle for the receivers' verify-pipeline
	// priority lane: stall re-broadcasts are recovery traffic and must
	// not queue behind the live firehose.
	bundle := &types.Bundle{Messages: msgs, Resync: true}
	for p := 0; p < e.cfg.Keys.N; p++ {
		if pid := types.PartyID(p); pid != e.cfg.Self {
			e.out = append(e.out, engine.Unicast(pid, bundle))
		}
	}
	if e.cfg.Hooks.OnResync != nil {
		e.cfg.Hooks.OnResync(e.round, now)
	}
}

// handleStatus answers a lagging peer's Status with a catch-up batch.
// Peers stuck behind our prune horizon get the latest certified
// checkpoint instead (checkpointing.go) — the artifacts they need are
// gone from the pool. The heavy lifting lives in the Catchup component
// (catchup.go): the engine clause only assembles the cheap inline
// bundle; uncached beacon-share signing is deferred to the configured
// CatchupProvider.
func (e *Engine) handleStatus(from types.PartyID, st *types.Status, now time.Duration) {
	if e.maybeServeCheckpoint(from, st, now) {
		return
	}
	if bundle := e.catchup.Respond(e.pool, from, st, e.round, e.lastFinalHash, now); bundle != nil {
		e.out = append(e.out, engine.Unicast(from, bundle))
	}
}
